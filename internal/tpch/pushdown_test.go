package tpch

import (
	"os"
	"testing"

	"elephants/internal/rcfile"
	"elephants/internal/relal"
)

// attachRCFile swaps every base-table source of db for a real RCFile
// encoding with the given row-group size.
func attachRCFile(t testing.TB, db *DB, groupRows int) {
	t.Helper()
	for _, name := range TableNames {
		src, err := rcfile.NewSource(db.Table(name), groupRows)
		if err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		db.SetSource(name, src)
	}
}

// rcfileDB generates a functional DB and swaps every base-table source
// for a real RCFile encoding with the given row-group size, so query
// scans exercise column pruning and zone-map group pruning for real.
func rcfileDB(t testing.TB, sf float64, groupRows int) *DB {
	t.Helper()
	db := Generate(GenConfig{SF: sf, Seed: 1, Random64: true})
	attachRCFile(t, db, groupRows)
	return db
}

// TestAllQueriesMatchGoldenOverRCFile is the end-to-end proof of the
// pushdown refactor: all 22 queries, scanning through RCFile-backed
// sources (subset columns decompressed, groups zone-pruned), must
// reproduce the committed golden snapshot byte-for-byte. The small
// row-group size forces multi-group files so pruning decisions really
// happen.
func TestAllQueriesMatchGoldenOverRCFile(t *testing.T) {
	want, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	db := rcfileDB(t, goldenSF, 1024)
	diffGolden(t, goldenSnapshotOf(db), string(want))
}

// TestRCFileParallelMatchesGolden combines both halves of the scan
// pipeline: RCFile-backed pushdown scans and a multi-worker morsel
// pool.
func TestRCFileParallelMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	db := rcfileDB(t, goldenSF, 1024)
	old := DefaultWorkers
	DefaultWorkers = 4
	defer func() { DefaultWorkers = old }()
	diffGolden(t, goldenSnapshotOf(db), string(want))
}

// lineitemScanStats sums the scan-step byte accounting for lineitem in
// one query's log.
func lineitemScanStats(log relal.StepLog) (read, skipped int64) {
	for _, s := range log.Steps {
		if s.Kind == relal.StepScan && s.Table == "lineitem" {
			read += s.ScanBytesRead
			skipped += s.ScanBytesSkipped
		}
	}
	return read, skipped
}

// TestQ6DecompressesUnderHalfTheFile checks the paper-motivated
// acceptance bound: Q6 references 4 of lineitem's 16 columns and pushes
// a shipdate/discount/quantity predicate, so an RCFile-backed scan must
// decompress well under half of the file's chunk bytes.
func TestQ6DecompressesUnderHalfTheFile(t *testing.T) {
	db := rcfileDB(t, 0.005, 2048)
	_, log := RunQuery(6, db)
	read, skipped := lineitemScanStats(log)
	if read == 0 || skipped == 0 {
		t.Fatalf("scan stats not populated: read=%d skipped=%d", read, skipped)
	}
	frac := float64(read) / float64(read+skipped)
	if frac >= 0.5 {
		t.Errorf("Q6 decompressed %.1f%% of lineitem bytes, want < 50%%", 100*frac)
	}
	t.Logf("Q6 decompressed %.1f%% of lineitem chunk bytes (read %d, skipped %d)", 100*frac, read, skipped)
}

// TestInMemoryScanStatsModelPushdown checks the in-memory TableSource
// reports the modeled skipped-bytes ratio (the functional table itself
// stays whole, so operator cardinalities — and the engines' cost
// replays — are unchanged).
func TestInMemoryScanStatsModelPushdown(t *testing.T) {
	db := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true})
	out, log := RunQuery(6, db)
	if out.NumRows() != 1 {
		t.Fatalf("Q6 rows = %d", out.NumRows())
	}
	read, skipped := lineitemScanStats(log)
	if read == 0 || skipped == 0 {
		t.Fatalf("in-memory scan stats not populated: read=%d skipped=%d", read, skipped)
	}
	if frac := float64(read) / float64(read+skipped); frac >= 0.5 {
		t.Errorf("modeled Q6 read fraction %.2f, want < 0.5 (4 of 16 columns)", frac)
	}
	// The full scan view must still be whole: Q6's filter input equals
	// lineitem's row count.
	for _, s := range log.Steps {
		if s.Kind == relal.StepScan && s.Table == "lineitem" {
			if s.OutRows != db.Lineitem.NumRows() {
				t.Errorf("in-memory scan pruned rows (%d of %d): cost replay would drift",
					s.OutRows, db.Lineitem.NumRows())
			}
		}
	}
}

// TestZonePruningFiresOnSortedData: zone maps can only prune groups
// whose min/max exclude the predicate; TPC-H dates are uniform within
// lineitem, so build a shipdate-sorted copy and check groups really
// drop.
func TestZonePruningFiresOnSortedData(t *testing.T) {
	db := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true})
	e := &relal.Exec{}
	sorted := e.Sort(db.Lineitem, relal.OrderSpec{Col: "l_shipdate"}).Compacted()
	sorted.Name = "lineitem"
	src, err := rcfile.NewSource(sorted, 2048)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := src.ScanTable([]string{"l_extendedprice"},
		relal.ZonePredicate{relal.StrBetween("l_shipdate", "1994-01-01", "1995-01-01")})
	if stats.GroupsSkipped == 0 {
		t.Error("no groups pruned on shipdate-sorted lineitem with a one-year predicate")
	}
	if stats.GroupsRead == 0 {
		t.Error("pruning dropped every group; the 1994 slice must survive")
	}
	t.Logf("sorted lineitem: %d groups read, %d pruned, %.1f%% bytes skipped",
		stats.GroupsRead, stats.GroupsSkipped, 100*stats.SkippedFrac())
}

// TestClusteredLineitemBoostsQ6ZoneSkip extends the sorted-data zone
// pruning proof to the generator's clustering knob: with lineitem
// generated in l_shipdate order (GenConfig.ClusterBy / dbgen -cluster),
// Q6's one-year range predicate prunes most row groups, so the
// RCFile-backed scan decompresses a small fraction of the file where
// the unclustered layout reads ~a quarter of it — and the answer stays
// the same rows.
func TestClusteredLineitemBoostsQ6ZoneSkip(t *testing.T) {
	readFrac := func(db *DB) (float64, float64) {
		out, log := RunQuery(6, db)
		if out.NumRows() != 1 {
			t.Fatalf("Q6 rows = %d", out.NumRows())
		}
		read, skipped := lineitemScanStats(log)
		if read == 0 || skipped == 0 {
			t.Fatalf("scan stats not populated: read=%d skipped=%d", read, skipped)
		}
		return float64(read) / float64(read+skipped), out.FloatCol("revenue").Get(0)
	}
	plain := rcfileDB(t, 0.005, 2048)
	pfrac, prev := readFrac(plain)

	clustered := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true, ClusterBy: "l_shipdate"})
	attachRCFile(t, clustered, 2048)
	cfrac, crev := readFrac(clustered)

	if cfrac >= 0.10 {
		t.Errorf("clustered Q6 decompressed %.1f%% of lineitem bytes, want < 10%%", 100*cfrac)
	}
	if cfrac >= pfrac/2 {
		t.Errorf("clustering should at least halve Q6's read fraction: %.3f (clustered) vs %.3f", cfrac, pfrac)
	}
	// Same rows, same sum up to accumulation-order rounding.
	if diff := (crev - prev) / prev; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("clustered Q6 revenue drifts: %v vs %v", crev, prev)
	}
	t.Logf("Q6 lineitem read fraction: %.1f%% unclustered -> %.1f%% clustered", 100*pfrac, 100*cfrac)
}

// TestRunQueryWorkersMatchesSerial locks RunQueryWorkers to the serial
// result for a representative query mix at several pool sizes.
func TestRunQueryWorkersMatchesSerial(t *testing.T) {
	db := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true})
	for _, id := range []int{1, 6, 13, 18, 21} {
		ref, _ := RunQueryWorkers(id, db, 1)
		want := FormatAnswer(id, ref)
		for _, workers := range []int{2, 3, 8} {
			out, _ := RunQueryWorkers(id, db, workers)
			if got := FormatAnswer(id, out); got != want {
				t.Errorf("Q%d answer drifts at workers=%d", id, workers)
			}
		}
	}
}
