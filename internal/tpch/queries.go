package tpch

import (
	"strings"

	"elephants/internal/relal"
)

// Query is one of the 22 TPC-H queries, written once over the relal
// operators. Running Fn yields the answer table plus a step log that the
// Hive and PDW engines cost with their own physical strategies. The
// step order is the "written order" of the HIVE-600 scripts, which is
// what Hive executes literally (no cost-based reordering).
type Query struct {
	ID     int
	Name   string
	Tables []string // base tables referenced
}

// Queries lists all 22 queries in benchmark order.
var Queries = []Query{
	{1, "pricing summary report", []string{"lineitem"}},
	{2, "minimum cost supplier", []string{"part", "supplier", "partsupp", "nation", "region"}},
	{3, "shipping priority", []string{"customer", "orders", "lineitem"}},
	{4, "order priority checking", []string{"orders", "lineitem"}},
	{5, "local supplier volume", []string{"customer", "orders", "lineitem", "supplier", "nation", "region"}},
	{6, "forecasting revenue change", []string{"lineitem"}},
	{7, "volume shipping", []string{"supplier", "lineitem", "orders", "customer", "nation"}},
	{8, "national market share", []string{"part", "supplier", "lineitem", "orders", "customer", "nation", "region"}},
	{9, "product type profit", []string{"part", "supplier", "lineitem", "partsupp", "orders", "nation"}},
	{10, "returned item reporting", []string{"customer", "orders", "lineitem", "nation"}},
	{11, "important stock identification", []string{"partsupp", "supplier", "nation"}},
	{12, "shipping modes and order priority", []string{"orders", "lineitem"}},
	{13, "customer distribution", []string{"customer", "orders"}},
	{14, "promotion effect", []string{"lineitem", "part"}},
	{15, "top supplier", []string{"supplier", "lineitem"}},
	{16, "parts/supplier relationship", []string{"partsupp", "part", "supplier"}},
	{17, "small-quantity-order revenue", []string{"lineitem", "part"}},
	{18, "large volume customer", []string{"customer", "orders", "lineitem"}},
	{19, "discounted revenue", []string{"lineitem", "part"}},
	{20, "potential part promotion", []string{"supplier", "nation", "partsupp", "part", "lineitem"}},
	{21, "suppliers who kept orders waiting", []string{"supplier", "lineitem", "orders", "nation"}},
	{22, "global sales opportunity", []string{"customer", "orders"}},
}

// RunQuery executes query id against db, returning the answer and the
// step log. It panics on unknown ids (callers iterate Queries).
func RunQuery(id int, db *DB) (*relal.Table, relal.StepLog) {
	e := &relal.Exec{}
	var out *relal.Table
	switch id {
	case 1:
		out = q1(e, db)
	case 2:
		out = q2(e, db)
	case 3:
		out = q3(e, db)
	case 4:
		out = q4(e, db)
	case 5:
		out = q5(e, db)
	case 6:
		out = q6(e, db)
	case 7:
		out = q7(e, db)
	case 8:
		out = q8(e, db)
	case 9:
		out = q9(e, db)
	case 10:
		out = q10(e, db)
	case 11:
		out = q11(e, db)
	case 12:
		out = q12(e, db)
	case 13:
		out = q13(e, db)
	case 14:
		out = q14(e, db)
	case 15:
		out = q15(e, db)
	case 16:
		out = q16(e, db)
	case 17:
		out = q17(e, db)
	case 18:
		out = q18(e, db)
	case 19:
		out = q19(e, db)
	case 20:
		out = q20(e, db)
	case 21:
		out = q21(e, db)
	case 22:
		out = q22(e, db)
	default:
		panic("tpch: unknown query")
	}
	return out, e.Log
}

// q1: scan lineitem, filter by shipdate, wide aggregation, sort.
func q1(e *relal.Exec, db *DB) *relal.Table {
	li := e.Scan(db.Lineitem)
	sd := li.Schema.Col("l_shipdate")
	f := e.Filter(li, func(r relal.Row) bool { return relal.S(r[sd]) <= "1998-09-02" })
	f = relal.Extend(f, "disc_price", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[f.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[f.Schema.Col("l_discount")]))
	})
	f = relal.Extend(f, "charge", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[f.Schema.Col("disc_price")]) * (1 + relal.F(r[f.Schema.Col("l_tax")]))
	})
	agg := e.Aggregate(f, []string{"l_returnflag", "l_linestatus"}, []relal.AggSpec{
		{Fn: "sum", Col: "l_quantity", As: "sum_qty"},
		{Fn: "sum", Col: "l_extendedprice", As: "sum_base_price"},
		{Fn: "sum", Col: "disc_price", As: "sum_disc_price"},
		{Fn: "sum", Col: "charge", As: "sum_charge"},
		{Fn: "avg", Col: "l_quantity", As: "avg_qty"},
		{Fn: "avg", Col: "l_extendedprice", As: "avg_price"},
		{Fn: "avg", Col: "l_discount", As: "avg_disc"},
		{Fn: "count", Col: "*", As: "count_order"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "l_returnflag"}, relal.OrderSpec{Col: "l_linestatus"})
}

// q2: min-cost supplier for size-15 BRASS parts in EUROPE.
func q2(e *relal.Exec, db *DB) *relal.Table {
	part := e.Filter(e.Scan(db.Part), func(r relal.Row) bool {
		return relal.I(r[db.Part.Schema.Col("p_size")]) == 15 &&
			strings.HasSuffix(relal.S(r[db.Part.Schema.Col("p_type")]), "BRASS")
	})
	region := e.Filter(e.Scan(db.Region), func(r relal.Row) bool {
		return relal.S(r[db.Region.Schema.Col("r_name")]) == "EUROPE"
	})
	nation := e.Join(e.Scan(db.Nation), region, "n_regionkey", "r_regionkey")
	supp := e.Join(e.Scan(db.Supplier), nation, "s_nationkey", "n_nationkey")
	ps := e.Join(e.Scan(db.PartSupp), supp, "ps_suppkey", "s_suppkey")
	psp := e.Join(ps, part, "ps_partkey", "p_partkey")
	// Minimum supplycost per part (within EUROPE suppliers).
	minCost := e.Aggregate(psp, []string{"p_partkey"}, []relal.AggSpec{
		{Fn: "min", Col: "ps_supplycost", As: "min_cost"},
	})
	// Keep rows matching the per-part minimum.
	minIdx := make(map[int64]float64, minCost.NumRows())
	pk := minCost.Schema.Col("p_partkey")
	mc := minCost.Schema.Col("min_cost")
	for _, r := range minCost.Rows {
		minIdx[relal.I(r[pk])] = relal.F(r[mc])
	}
	ppk := psp.Schema.Col("ps_partkey")
	cost := psp.Schema.Col("ps_supplycost")
	final := e.Filter(psp, func(r relal.Row) bool {
		return relal.F(r[cost]) == minIdx[relal.I(r[ppk])]
	})
	proj := e.Project(final, "s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment")
	sorted := e.Sort(proj,
		relal.OrderSpec{Col: "s_acctbal", Desc: true},
		relal.OrderSpec{Col: "n_name"},
		relal.OrderSpec{Col: "s_name"},
		relal.OrderSpec{Col: "p_partkey"},
	)
	return e.Limit(sorted, 100)
}

// q3: top unshipped orders for the BUILDING segment.
func q3(e *relal.Exec, db *DB) *relal.Table {
	cust := e.Filter(e.Scan(db.Customer), func(r relal.Row) bool {
		return relal.S(r[db.Customer.Schema.Col("c_mktsegment")]) == "BUILDING"
	})
	ord := e.Filter(e.Scan(db.Orders), func(r relal.Row) bool {
		return relal.S(r[db.Orders.Schema.Col("o_orderdate")]) < "1995-03-15"
	})
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		return relal.S(r[db.Lineitem.Schema.Col("l_shipdate")]) > "1995-03-15"
	})
	co := e.Join(ord, cust, "o_custkey", "c_custkey")
	col := e.Join(li, co, "l_orderkey", "o_orderkey")
	col = relal.Extend(col, "revenue_item", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[col.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[col.Schema.Col("l_discount")]))
	})
	agg := e.Aggregate(col, []string{"l_orderkey", "o_orderdate", "o_shippriority"}, []relal.AggSpec{
		{Fn: "sum", Col: "revenue_item", As: "revenue"},
	})
	sorted := e.Sort(agg,
		relal.OrderSpec{Col: "revenue", Desc: true},
		relal.OrderSpec{Col: "o_orderdate"},
	)
	return e.Limit(sorted, 10)
}

// q4: order priority with existing late lineitem.
func q4(e *relal.Exec, db *DB) *relal.Table {
	ord := e.Filter(e.Scan(db.Orders), func(r relal.Row) bool {
		d := relal.S(r[db.Orders.Schema.Col("o_orderdate")])
		return d >= "1993-07-01" && d < "1993-10-01"
	})
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		return relal.S(r[db.Lineitem.Schema.Col("l_commitdate")]) < relal.S(r[db.Lineitem.Schema.Col("l_receiptdate")])
	})
	liKeys := e.Aggregate(li, []string{"l_orderkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n"}})
	sj := e.SemiJoin(ord, liKeys, "o_orderkey", "l_orderkey")
	agg := e.Aggregate(sj, []string{"o_orderpriority"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "order_count"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "o_orderpriority"})
}

// q5: local supplier volume in ASIA. Written order follows the HIVE-600
// script the paper analyzes: nation⋈region, then supplier, then the big
// lineitem common join, then orders, then customer.
func q5(e *relal.Exec, db *DB) *relal.Table {
	region := e.Filter(e.Scan(db.Region), func(r relal.Row) bool {
		return relal.S(r[db.Region.Schema.Col("r_name")]) == "ASIA"
	})
	nr := e.Join(e.Scan(db.Nation), region, "n_regionkey", "r_regionkey")
	snr := e.Join(e.Scan(db.Supplier), nr, "s_nationkey", "n_nationkey")
	lsnr := e.Join(e.Scan(db.Lineitem), snr, "l_suppkey", "s_suppkey")
	ord := e.Filter(e.Scan(db.Orders), func(r relal.Row) bool {
		d := relal.S(r[db.Orders.Schema.Col("o_orderdate")])
		return d >= "1994-01-01" && d < "1995-01-01"
	})
	lo := e.Join(lsnr, ord, "l_orderkey", "o_orderkey")
	// Customer must be in the same nation as the supplier.
	loc := e.Join(lo, e.Scan(db.Customer), "o_custkey", "c_custkey")
	ck := loc.Schema.Col("c_nationkey")
	sk := loc.Schema.Col("s_nationkey")
	same := e.Filter(loc, func(r relal.Row) bool { return relal.I(r[ck]) == relal.I(r[sk]) })
	same = relal.Extend(same, "rev", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[same.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[same.Schema.Col("l_discount")]))
	})
	agg := e.Aggregate(same, []string{"n_name"}, []relal.AggSpec{
		{Fn: "sum", Col: "rev", As: "revenue"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "revenue", Desc: true})
}

// q6: single-table revenue forecast.
func q6(e *relal.Exec, db *DB) *relal.Table {
	li := e.Scan(db.Lineitem)
	sd := li.Schema.Col("l_shipdate")
	disc := li.Schema.Col("l_discount")
	qty := li.Schema.Col("l_quantity")
	f := e.Filter(li, func(r relal.Row) bool {
		d := relal.S(r[sd])
		dc := relal.F(r[disc])
		return d >= "1994-01-01" && d < "1995-01-01" &&
			dc >= 0.05-1e-9 && dc <= 0.07+1e-9 &&
			relal.F(r[qty]) < 24
	})
	f = relal.Extend(f, "rev", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[f.Schema.Col("l_extendedprice")]) * relal.F(r[f.Schema.Col("l_discount")])
	})
	return e.Aggregate(f, nil, []relal.AggSpec{{Fn: "sum", Col: "rev", As: "revenue"}})
}

// q7: shipping volume between FRANCE and GERMANY.
func q7(e *relal.Exec, db *DB) *relal.Table {
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		d := relal.S(r[db.Lineitem.Schema.Col("l_shipdate")])
		return d >= "1995-01-01" && d <= "1996-12-31"
	})
	ls := e.Join(li, e.Scan(db.Supplier), "l_suppkey", "s_suppkey")
	lso := e.Join(ls, e.Scan(db.Orders), "l_orderkey", "o_orderkey")
	lsoc := e.Join(lso, e.Scan(db.Customer), "o_custkey", "c_custkey")
	// Two nation joins: supplier nation and customer nation.
	n1 := e.Join(lsoc, e.Scan(db.Nation), "s_nationkey", "n_nationkey")
	// Rename nation columns for the second join by projecting first.
	n1 = relal.Extend(n1, "supp_nation", relal.Str, func(r relal.Row) interface{} {
		return r[n1.Schema.Col("n_name")]
	})
	custNation := e.Scan(db.Nation)
	cn := &relal.Table{Name: "nation2", Schema: relal.Schema{
		{Name: "n2_nationkey", Type: relal.Int},
		{Name: "cust_nation", Type: relal.Str},
	}, Base: "nation"}
	for _, r := range custNation.Rows {
		cn.Rows = append(cn.Rows, relal.Row{r[0], r[1]})
	}
	n2 := e.Join(n1, cn, "c_nationkey", "n2_nationkey")
	sn := n2.Schema.Col("supp_nation")
	cu := n2.Schema.Col("cust_nation")
	f := e.Filter(n2, func(r relal.Row) bool {
		a, b := relal.S(r[sn]), relal.S(r[cu])
		return (a == "FRANCE" && b == "GERMANY") || (a == "GERMANY" && b == "FRANCE")
	})
	f = relal.Extend(f, "l_year", relal.Str, func(r relal.Row) interface{} {
		return relal.S(r[f.Schema.Col("l_shipdate")])[:4]
	})
	f = relal.Extend(f, "volume", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[f.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[f.Schema.Col("l_discount")]))
	})
	agg := e.Aggregate(f, []string{"supp_nation", "cust_nation", "l_year"}, []relal.AggSpec{
		{Fn: "sum", Col: "volume", As: "revenue"},
	})
	return e.Sort(agg,
		relal.OrderSpec{Col: "supp_nation"},
		relal.OrderSpec{Col: "cust_nation"},
		relal.OrderSpec{Col: "l_year"},
	)
}

// q8: BRAZIL's market share in AMERICA for a part type.
func q8(e *relal.Exec, db *DB) *relal.Table {
	part := e.Filter(e.Scan(db.Part), func(r relal.Row) bool {
		return relal.S(r[db.Part.Schema.Col("p_type")]) == "ECONOMY ANODIZED STEEL"
	})
	lp := e.Join(e.Scan(db.Lineitem), part, "l_partkey", "p_partkey")
	lps := e.Join(lp, e.Scan(db.Supplier), "l_suppkey", "s_suppkey")
	ord := e.Filter(e.Scan(db.Orders), func(r relal.Row) bool {
		d := relal.S(r[db.Orders.Schema.Col("o_orderdate")])
		return d >= "1995-01-01" && d <= "1996-12-31"
	})
	lpso := e.Join(lps, ord, "l_orderkey", "o_orderkey")
	lpsoc := e.Join(lpso, e.Scan(db.Customer), "o_custkey", "c_custkey")
	// Customer nation must be in AMERICA.
	region := e.Filter(e.Scan(db.Region), func(r relal.Row) bool {
		return relal.S(r[db.Region.Schema.Col("r_name")]) == "AMERICA"
	})
	nr := e.Join(e.Scan(db.Nation), region, "n_regionkey", "r_regionkey")
	custAm := e.Join(lpsoc, nr, "c_nationkey", "n_nationkey")
	// Supplier nation name.
	sn := &relal.Table{Name: "nation_s", Schema: relal.Schema{
		{Name: "ns_nationkey", Type: relal.Int},
		{Name: "supp_nation", Type: relal.Str},
	}, Base: "nation"}
	for _, r := range db.Nation.Rows {
		sn.Rows = append(sn.Rows, relal.Row{r[0], r[1]})
	}
	all := e.Join(custAm, sn, "s_nationkey", "ns_nationkey")
	all = relal.Extend(all, "o_year", relal.Str, func(r relal.Row) interface{} {
		return relal.S(r[all.Schema.Col("o_orderdate")])[:4]
	})
	all = relal.Extend(all, "volume", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[all.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[all.Schema.Col("l_discount")]))
	})
	all = relal.Extend(all, "brazil_volume", relal.Float, func(r relal.Row) interface{} {
		if relal.S(r[all.Schema.Col("supp_nation")]) == "BRAZIL" {
			return relal.F(r[all.Schema.Col("volume")])
		}
		return 0.0
	})
	agg := e.Aggregate(all, []string{"o_year"}, []relal.AggSpec{
		{Fn: "sum", Col: "brazil_volume", As: "brazil"},
		{Fn: "sum", Col: "volume", As: "total"},
	})
	agg = relal.Extend(agg, "mkt_share", relal.Float, func(r relal.Row) interface{} {
		t := relal.F(r[agg.Schema.Col("total")])
		if t == 0 {
			return 0.0
		}
		return relal.F(r[agg.Schema.Col("brazil")]) / t
	})
	out := e.Project(agg, "o_year", "mkt_share")
	return e.Sort(out, relal.OrderSpec{Col: "o_year"})
}

// q9: profit by nation and year for green parts. The paper notes this
// query ran out of disk in Hive at 16 TB.
func q9(e *relal.Exec, db *DB) *relal.Table {
	part := e.Filter(e.Scan(db.Part), func(r relal.Row) bool {
		return strings.Contains(relal.S(r[db.Part.Schema.Col("p_name")]), "green")
	})
	lp := e.Join(e.Scan(db.Lineitem), part, "l_partkey", "p_partkey")
	lps := e.Join(lp, e.Scan(db.Supplier), "l_suppkey", "s_suppkey")
	// partsupp join on (partkey, suppkey): join on partkey then filter.
	lpsps := e.Join(lps, e.Scan(db.PartSupp), "l_partkey", "ps_partkey")
	sk := lpsps.Schema.Col("l_suppkey")
	pssk := lpsps.Schema.Col("ps_suppkey")
	match := e.Filter(lpsps, func(r relal.Row) bool { return relal.I(r[sk]) == relal.I(r[pssk]) })
	mo := e.Join(match, e.Scan(db.Orders), "l_orderkey", "o_orderkey")
	mon := e.Join(mo, e.Scan(db.Nation), "s_nationkey", "n_nationkey")
	mon = relal.Extend(mon, "o_year", relal.Str, func(r relal.Row) interface{} {
		return relal.S(r[mon.Schema.Col("o_orderdate")])[:4]
	})
	mon = relal.Extend(mon, "amount", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[mon.Schema.Col("l_extendedprice")])*(1-relal.F(r[mon.Schema.Col("l_discount")])) -
			relal.F(r[mon.Schema.Col("ps_supplycost")])*relal.F(r[mon.Schema.Col("l_quantity")])
	})
	agg := e.Aggregate(mon, []string{"n_name", "o_year"}, []relal.AggSpec{
		{Fn: "sum", Col: "amount", As: "sum_profit"},
	})
	return e.Sort(agg,
		relal.OrderSpec{Col: "n_name"},
		relal.OrderSpec{Col: "o_year", Desc: true},
	)
}

// q10: customers who returned items.
func q10(e *relal.Exec, db *DB) *relal.Table {
	ord := e.Filter(e.Scan(db.Orders), func(r relal.Row) bool {
		d := relal.S(r[db.Orders.Schema.Col("o_orderdate")])
		return d >= "1993-10-01" && d < "1994-01-01"
	})
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		return relal.S(r[db.Lineitem.Schema.Col("l_returnflag")]) == "R"
	})
	lo := e.Join(li, ord, "l_orderkey", "o_orderkey")
	loc := e.Join(lo, e.Scan(db.Customer), "o_custkey", "c_custkey")
	locn := e.Join(loc, e.Scan(db.Nation), "c_nationkey", "n_nationkey")
	locn = relal.Extend(locn, "rev", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[locn.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[locn.Schema.Col("l_discount")]))
	})
	agg := e.Aggregate(locn, []string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"}, []relal.AggSpec{
		{Fn: "sum", Col: "rev", As: "revenue"},
	})
	sorted := e.Sort(agg, relal.OrderSpec{Col: "revenue", Desc: true})
	return e.Limit(sorted, 20)
}

// q11: important stock in GERMANY.
func q11(e *relal.Exec, db *DB) *relal.Table {
	nation := e.Filter(e.Scan(db.Nation), func(r relal.Row) bool {
		return relal.S(r[db.Nation.Schema.Col("n_name")]) == "GERMANY"
	})
	sn := e.Join(e.Scan(db.Supplier), nation, "s_nationkey", "n_nationkey")
	ps := e.Join(e.Scan(db.PartSupp), sn, "ps_suppkey", "s_suppkey")
	ps = relal.Extend(ps, "value", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[ps.Schema.Col("ps_supplycost")]) * relal.F(r[ps.Schema.Col("ps_availqty")])
	})
	total := e.Aggregate(ps, nil, []relal.AggSpec{{Fn: "sum", Col: "value", As: "total"}})
	// The spec's fraction is 0.0001/SF, which scales so the query
	// returns a similar-sized answer at every scale factor.
	threshold := 0.0
	if total.NumRows() > 0 {
		threshold = relal.F(total.Rows[0][0]) * 0.0001 / db.SF
	}
	byPart := e.Aggregate(ps, []string{"ps_partkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "value", As: "value"},
	})
	vi := byPart.Schema.Col("value")
	f := e.Filter(byPart, func(r relal.Row) bool { return relal.F(r[vi]) > threshold })
	return e.Sort(f, relal.OrderSpec{Col: "value", Desc: true})
}

// q12: shipping modes and order priority.
func q12(e *relal.Exec, db *DB) *relal.Table {
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		s := db.Lineitem.Schema
		mode := relal.S(r[s.Col("l_shipmode")])
		if mode != "MAIL" && mode != "SHIP" {
			return false
		}
		commit := relal.S(r[s.Col("l_commitdate")])
		receipt := relal.S(r[s.Col("l_receiptdate")])
		ship := relal.S(r[s.Col("l_shipdate")])
		return commit < receipt && ship < commit &&
			receipt >= "1994-01-01" && receipt < "1995-01-01"
	})
	lo := e.Join(li, e.Scan(db.Orders), "l_orderkey", "o_orderkey")
	lo = relal.Extend(lo, "high_line", relal.Int, func(r relal.Row) interface{} {
		p := relal.S(r[lo.Schema.Col("o_orderpriority")])
		if p == "1-URGENT" || p == "2-HIGH" {
			return int64(1)
		}
		return int64(0)
	})
	lo = relal.Extend(lo, "low_line", relal.Int, func(r relal.Row) interface{} {
		if relal.I(r[lo.Schema.Col("high_line")]) == 1 {
			return int64(0)
		}
		return int64(1)
	})
	agg := e.Aggregate(lo, []string{"l_shipmode"}, []relal.AggSpec{
		{Fn: "sum", Col: "high_line", As: "high_line_count"},
		{Fn: "sum", Col: "low_line", As: "low_line_count"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "l_shipmode"})
}

// q13: distribution of customers by order count.
func q13(e *relal.Exec, db *DB) *relal.Table {
	ord := e.Filter(e.Scan(db.Orders), func(r relal.Row) bool {
		c := relal.S(r[db.Orders.Schema.Col("o_comment")])
		i := strings.Index(c, "special")
		return i < 0 || !strings.Contains(c[i:], "requests")
	})
	perCust := e.Aggregate(ord, []string{"o_custkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "c_count"},
	})
	cust := e.Scan(db.Customer)
	// Left join: customers with no orders count 0. Model as join plus
	// the complement.
	joined := e.Join(cust, perCust, "c_custkey", "o_custkey")
	matched := e.Project(joined, "c_custkey", "c_count")
	unmatched := e.AntiJoin(cust, perCust, "c_custkey", "o_custkey")
	all := &relal.Table{Name: "cust_counts", Schema: relal.Schema{
		{Name: "c_custkey", Type: relal.Int},
		{Name: "c_count", Type: relal.Int},
	}}
	for _, r := range matched.Rows {
		all.Rows = append(all.Rows, relal.Row{r[0], r[1]})
	}
	ck := cust.Schema.Col("c_custkey")
	for _, r := range unmatched.Rows {
		all.Rows = append(all.Rows, relal.Row{r[ck], int64(0)})
	}
	dist := e.Aggregate(all, []string{"c_count"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "custdist"},
	})
	return e.Sort(dist,
		relal.OrderSpec{Col: "custdist", Desc: true},
		relal.OrderSpec{Col: "c_count", Desc: true},
	)
}

// q14: promotion effect for one month.
func q14(e *relal.Exec, db *DB) *relal.Table {
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		d := relal.S(r[db.Lineitem.Schema.Col("l_shipdate")])
		return d >= "1995-09-01" && d < "1995-10-01"
	})
	lp := e.Join(li, e.Scan(db.Part), "l_partkey", "p_partkey")
	lp = relal.Extend(lp, "rev", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[lp.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[lp.Schema.Col("l_discount")]))
	})
	lp = relal.Extend(lp, "promo_rev", relal.Float, func(r relal.Row) interface{} {
		if strings.HasPrefix(relal.S(r[lp.Schema.Col("p_type")]), "PROMO") {
			return relal.F(r[lp.Schema.Col("rev")])
		}
		return 0.0
	})
	agg := e.Aggregate(lp, nil, []relal.AggSpec{
		{Fn: "sum", Col: "promo_rev", As: "promo"},
		{Fn: "sum", Col: "rev", As: "total"},
	})
	return relal.Extend(agg, "promo_revenue", relal.Float, func(r relal.Row) interface{} {
		t := relal.F(r[agg.Schema.Col("total")])
		if t == 0 {
			return 0.0
		}
		return 100 * relal.F(r[agg.Schema.Col("promo")]) / t
	})
}

// q15: top supplier by quarterly revenue.
func q15(e *relal.Exec, db *DB) *relal.Table {
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		d := relal.S(r[db.Lineitem.Schema.Col("l_shipdate")])
		return d >= "1996-01-01" && d < "1996-04-01"
	})
	li = relal.Extend(li, "rev", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[li.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[li.Schema.Col("l_discount")]))
	})
	revenue := e.Aggregate(li, []string{"l_suppkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "rev", As: "total_revenue"},
	})
	maxRev := e.Aggregate(revenue, nil, []relal.AggSpec{
		{Fn: "max", Col: "total_revenue", As: "max_rev"},
	})
	mx := 0.0
	if maxRev.NumRows() > 0 {
		mx = relal.F(maxRev.Rows[0][0])
	}
	tr := revenue.Schema.Col("total_revenue")
	top := e.Filter(revenue, func(r relal.Row) bool { return relal.F(r[tr]) >= mx-1e-6 })
	st := e.Join(top, e.Scan(db.Supplier), "l_suppkey", "s_suppkey")
	proj := e.Project(st, "s_suppkey", "s_name", "s_address", "s_phone", "total_revenue")
	return e.Sort(proj, relal.OrderSpec{Col: "s_suppkey"})
}

// q16: supplier counts by part attributes, excluding complaint suppliers.
func q16(e *relal.Exec, db *DB) *relal.Table {
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	part := e.Filter(e.Scan(db.Part), func(r relal.Row) bool {
		s := db.Part.Schema
		return relal.S(r[s.Col("p_brand")]) != "Brand#45" &&
			!strings.HasPrefix(relal.S(r[s.Col("p_type")]), "MEDIUM POLISHED") &&
			sizes[relal.I(r[s.Col("p_size")])]
	})
	complaints := e.Filter(e.Scan(db.Supplier), func(r relal.Row) bool {
		c := relal.S(r[db.Supplier.Schema.Col("s_comment")])
		i := strings.Index(c, "Customer")
		return i >= 0 && strings.Contains(c[i:], "Complaints")
	})
	ps := e.AntiJoin(e.Scan(db.PartSupp), complaints, "ps_suppkey", "s_suppkey")
	psp := e.Join(ps, part, "ps_partkey", "p_partkey")
	// count(distinct ps_suppkey): dedup then count.
	dedup := e.Aggregate(psp, []string{"p_brand", "p_type", "p_size", "ps_suppkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "n"},
	})
	agg := e.Aggregate(dedup, []string{"p_brand", "p_type", "p_size"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "supplier_cnt"},
	})
	return e.Sort(agg,
		relal.OrderSpec{Col: "supplier_cnt", Desc: true},
		relal.OrderSpec{Col: "p_brand"},
		relal.OrderSpec{Col: "p_type"},
		relal.OrderSpec{Col: "p_size"},
	)
}

// q17: small-quantity-order revenue for one brand/container.
func q17(e *relal.Exec, db *DB) *relal.Table {
	part := e.Filter(e.Scan(db.Part), func(r relal.Row) bool {
		s := db.Part.Schema
		return relal.S(r[s.Col("p_brand")]) == "Brand#23" &&
			relal.S(r[s.Col("p_container")]) == "MED BOX"
	})
	lp := e.Join(e.Scan(db.Lineitem), part, "l_partkey", "p_partkey")
	avgQty := e.Aggregate(lp, []string{"p_partkey"}, []relal.AggSpec{
		{Fn: "avg", Col: "l_quantity", As: "avg_qty"},
	})
	avgIdx := make(map[int64]float64, avgQty.NumRows())
	pk := avgQty.Schema.Col("p_partkey")
	aq := avgQty.Schema.Col("avg_qty")
	for _, r := range avgQty.Rows {
		avgIdx[relal.I(r[pk])] = relal.F(r[aq])
	}
	lpk := lp.Schema.Col("l_partkey")
	qty := lp.Schema.Col("l_quantity")
	f := e.Filter(lp, func(r relal.Row) bool {
		return relal.F(r[qty]) < 0.2*avgIdx[relal.I(r[lpk])]
	})
	agg := e.Aggregate(f, nil, []relal.AggSpec{
		{Fn: "sum", Col: "l_extendedprice", As: "sum_price"},
	})
	return relal.Extend(agg, "avg_yearly", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[agg.Schema.Col("sum_price")]) / 7.0
	})
}

// q18: large-volume customers (sum qty > 300).
func q18(e *relal.Exec, db *DB) *relal.Table {
	li := e.Scan(db.Lineitem)
	perOrder := e.Aggregate(li, []string{"l_orderkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "l_quantity", As: "sum_qty"},
	})
	sq := perOrder.Schema.Col("sum_qty")
	big := e.Filter(perOrder, func(r relal.Row) bool { return relal.F(r[sq]) > 300 })
	bo := e.Join(big, e.Scan(db.Orders), "l_orderkey", "o_orderkey")
	boc := e.Join(bo, e.Scan(db.Customer), "o_custkey", "c_custkey")
	proj := e.Project(boc, "c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty")
	sorted := e.Sort(proj,
		relal.OrderSpec{Col: "o_totalprice", Desc: true},
		relal.OrderSpec{Col: "o_orderdate"},
	)
	return e.Limit(sorted, 100)
}

// q19: discounted revenue with the three-branch AND/OR predicate the
// paper's §3.3.4.1 analysis discusses.
func q19(e *relal.Exec, db *DB) *relal.Table {
	lp := e.Join(e.Scan(db.Lineitem), e.Scan(db.Part), "l_partkey", "p_partkey")
	s := lp.Schema
	brand := s.Col("p_brand")
	container := s.Col("p_container")
	qty := s.Col("l_quantity")
	size := s.Col("p_size")
	mode := s.Col("l_shipmode")
	instr := s.Col("l_shipinstruct")
	sm := func(c string, set ...string) bool {
		for _, x := range set {
			if c == x {
				return true
			}
		}
		return false
	}
	f := e.Filter(lp, func(r relal.Row) bool {
		if !(relal.S(r[mode]) == "AIR" || relal.S(r[mode]) == "REG AIR") {
			return false
		}
		if relal.S(r[instr]) != "DELIVER IN PERSON" {
			return false
		}
		b := relal.S(r[brand])
		c := relal.S(r[container])
		q := relal.F(r[qty])
		sz := relal.I(r[size])
		switch {
		case b == "Brand#12" && sm(c, "SM CASE", "SM BOX", "SM PACK", "SM PKG") && q >= 1 && q <= 11 && sz >= 1 && sz <= 5:
			return true
		case b == "Brand#23" && sm(c, "MED BAG", "MED BOX", "MED PKG", "MED PACK") && q >= 10 && q <= 20 && sz >= 1 && sz <= 10:
			return true
		case b == "Brand#34" && sm(c, "LG CASE", "LG BOX", "LG PACK", "LG PKG") && q >= 20 && q <= 30 && sz >= 1 && sz <= 15:
			return true
		}
		return false
	})
	f = relal.Extend(f, "rev", relal.Float, func(r relal.Row) interface{} {
		return relal.F(r[f.Schema.Col("l_extendedprice")]) * (1 - relal.F(r[f.Schema.Col("l_discount")]))
	})
	return e.Aggregate(f, nil, []relal.AggSpec{{Fn: "sum", Col: "rev", As: "revenue"}})
}

// q20: suppliers with surplus forest parts in CANADA.
func q20(e *relal.Exec, db *DB) *relal.Table {
	part := e.Filter(e.Scan(db.Part), func(r relal.Row) bool {
		return strings.HasPrefix(relal.S(r[db.Part.Schema.Col("p_name")]), "forest")
	})
	li := e.Filter(e.Scan(db.Lineitem), func(r relal.Row) bool {
		d := relal.S(r[db.Lineitem.Schema.Col("l_shipdate")])
		return d >= "1994-01-01" && d < "1995-01-01"
	})
	shipped := e.Aggregate(li, []string{"l_partkey", "l_suppkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "l_quantity", As: "sum_qty"},
	})
	shippedIdx := make(map[[2]int64]float64, shipped.NumRows())
	pk := shipped.Schema.Col("l_partkey")
	sk := shipped.Schema.Col("l_suppkey")
	sq := shipped.Schema.Col("sum_qty")
	for _, r := range shipped.Rows {
		shippedIdx[[2]int64{relal.I(r[pk]), relal.I(r[sk])}] = relal.F(r[sq])
	}
	ps := e.SemiJoin(e.Scan(db.PartSupp), part, "ps_partkey", "p_partkey")
	pspk := ps.Schema.Col("ps_partkey")
	pssk := ps.Schema.Col("ps_suppkey")
	avail := ps.Schema.Col("ps_availqty")
	surplus := e.Filter(ps, func(r relal.Row) bool {
		return relal.F(r[avail]) > 0.5*shippedIdx[[2]int64{relal.I(r[pspk]), relal.I(r[pssk])}]
	})
	nation := e.Filter(e.Scan(db.Nation), func(r relal.Row) bool {
		return relal.S(r[db.Nation.Schema.Col("n_name")]) == "CANADA"
	})
	supp := e.Join(e.Scan(db.Supplier), nation, "s_nationkey", "n_nationkey")
	final := e.SemiJoin(supp, surplus, "s_suppkey", "ps_suppkey")
	proj := e.Project(final, "s_name", "s_address")
	return e.Sort(proj, relal.OrderSpec{Col: "s_name"})
}

// q21: suppliers in SAUDI ARABIA who kept multi-supplier orders waiting.
func q21(e *relal.Exec, db *DB) *relal.Table {
	li := e.Scan(db.Lineitem)
	s := li.Schema
	// Suppliers per order, and late suppliers per order.
	perOrder := e.Aggregate(
		e.Aggregate(li, []string{"l_orderkey", "l_suppkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n"}}),
		[]string{"l_orderkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n_supp"}})
	late := e.Filter(li, func(r relal.Row) bool {
		return relal.S(r[s.Col("l_receiptdate")]) > relal.S(r[s.Col("l_commitdate")])
	})
	latePerOrder := e.Aggregate(
		e.Aggregate(late, []string{"l_orderkey", "l_suppkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n"}}),
		[]string{"l_orderkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n_late"}})
	nSupp := make(map[int64]int64, perOrder.NumRows())
	for _, r := range perOrder.Rows {
		nSupp[relal.I(r[0])] = relal.I(r[1])
	}
	nLate := make(map[int64]int64, latePerOrder.NumRows())
	for _, r := range latePerOrder.Rows {
		nLate[relal.I(r[0])] = relal.I(r[1])
	}
	// Candidate rows: this supplier was late, order has >1 suppliers,
	// and exactly one late supplier (this one), on F orders.
	ord := e.Filter(e.Scan(db.Orders), func(r relal.Row) bool {
		return relal.S(r[db.Orders.Schema.Col("o_orderstatus")]) == "F"
	})
	lateRows := e.Filter(late, func(r relal.Row) bool {
		ok := relal.I(r[s.Col("l_orderkey")])
		return nSupp[ok] > 1 && nLate[ok] == 1
	})
	lo := e.SemiJoin(lateRows, ord, "l_orderkey", "o_orderkey")
	ls := e.Join(lo, e.Scan(db.Supplier), "l_suppkey", "s_suppkey")
	nation := e.Filter(e.Scan(db.Nation), func(r relal.Row) bool {
		return relal.S(r[db.Nation.Schema.Col("n_name")]) == "SAUDI ARABIA"
	})
	lsn := e.Join(ls, nation, "s_nationkey", "n_nationkey")
	// One row per (order, supplier) — dedup before counting.
	dedup := e.Aggregate(lsn, []string{"s_name", "l_orderkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "n"},
	})
	agg := e.Aggregate(dedup, []string{"s_name"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "numwait"},
	})
	sorted := e.Sort(agg,
		relal.OrderSpec{Col: "numwait", Desc: true},
		relal.OrderSpec{Col: "s_name"},
	)
	return e.Limit(sorted, 100)
}

// q22: customers with above-average balances and no orders, by phone
// country code. In Hive this runs as four sub-queries (the paper's
// Table 5 breakdown).
func q22(e *relal.Exec, db *DB) *relal.Table {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	cphone := db.Customer.Schema.Col("c_phone")
	cbal := db.Customer.Schema.Col("c_acctbal")
	// Sub-query 1: candidate customers by phone code.
	cust := e.Filter(e.Scan(db.Customer), func(r relal.Row) bool {
		return codes[relal.S(r[cphone])[:2]]
	})
	// Sub-query 2: average positive balance among them.
	pos := e.Filter(cust, func(r relal.Row) bool { return relal.F(r[cbal]) > 0 })
	avg := e.Aggregate(pos, nil, []relal.AggSpec{{Fn: "avg", Col: "c_acctbal", As: "avg_bal"}})
	avgBal := 0.0
	if avg.NumRows() > 0 {
		avgBal = relal.F(avg.Rows[0][0])
	}
	// Sub-query 3: order keys (customers with orders).
	ordCust := e.Aggregate(e.Scan(db.Orders), []string{"o_custkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "n"},
	})
	// Sub-query 4: join it all.
	rich := e.Filter(cust, func(r relal.Row) bool { return relal.F(r[cbal]) > avgBal })
	noOrders := e.AntiJoin(rich, ordCust, "c_custkey", "o_custkey")
	noOrders = relal.Extend(noOrders, "cntrycode", relal.Str, func(r relal.Row) interface{} {
		return relal.S(r[noOrders.Schema.Col("c_phone")])[:2]
	})
	agg := e.Aggregate(noOrders, []string{"cntrycode"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "numcust"},
		{Fn: "sum", Col: "c_acctbal", As: "totacctbal"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "cntrycode"})
}
