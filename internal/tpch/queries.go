package tpch

import (
	"strings"

	"elephants/internal/relal"
)

// Query is one of the 22 TPC-H queries, written once over the relal
// operators. Running Fn yields the answer table plus a step log that the
// Hive and PDW engines cost with their own physical strategies. The
// step order is the "written order" of the HIVE-600 scripts, which is
// what Hive executes literally (no cost-based reordering).
//
// Predicates and computed columns use the columnar accessor API: a
// query binds typed column accessors (IntCol/FloatCol/StrCol) once,
// then filters and extensions evaluate them per row index — no boxed
// cells, no per-row type switches.
type Query struct {
	ID     int
	Name   string
	Tables []string // base tables referenced
}

// Queries lists all 22 queries in benchmark order.
var Queries = []Query{
	{1, "pricing summary report", []string{"lineitem"}},
	{2, "minimum cost supplier", []string{"part", "supplier", "partsupp", "nation", "region"}},
	{3, "shipping priority", []string{"customer", "orders", "lineitem"}},
	{4, "order priority checking", []string{"orders", "lineitem"}},
	{5, "local supplier volume", []string{"customer", "orders", "lineitem", "supplier", "nation", "region"}},
	{6, "forecasting revenue change", []string{"lineitem"}},
	{7, "volume shipping", []string{"supplier", "lineitem", "orders", "customer", "nation"}},
	{8, "national market share", []string{"part", "supplier", "lineitem", "orders", "customer", "nation", "region"}},
	{9, "product type profit", []string{"part", "supplier", "lineitem", "partsupp", "orders", "nation"}},
	{10, "returned item reporting", []string{"customer", "orders", "lineitem", "nation"}},
	{11, "important stock identification", []string{"partsupp", "supplier", "nation"}},
	{12, "shipping modes and order priority", []string{"orders", "lineitem"}},
	{13, "customer distribution", []string{"customer", "orders"}},
	{14, "promotion effect", []string{"lineitem", "part"}},
	{15, "top supplier", []string{"supplier", "lineitem"}},
	{16, "parts/supplier relationship", []string{"partsupp", "part", "supplier"}},
	{17, "small-quantity-order revenue", []string{"lineitem", "part"}},
	{18, "large volume customer", []string{"customer", "orders", "lineitem"}},
	{19, "discounted revenue", []string{"lineitem", "part"}},
	{20, "potential part promotion", []string{"supplier", "nation", "partsupp", "part", "lineitem"}},
	{21, "suppliers who kept orders waiting", []string{"supplier", "lineitem", "orders", "nation"}},
	{22, "global sales opportunity", []string{"customer", "orders"}},
}

// DefaultWorkers sizes the morsel worker pool RunQuery executes with
// (0 = GOMAXPROCS, 1 = serial). cmd/tpchbench's -workers flag sets it
// once at startup; results are identical at every setting.
var DefaultWorkers int

// TopKFusion selects the fused Exec.TopK operator for the bounded
// ORDER BY ... LIMIT queries (Q2/Q3/Q10/Q18/Q21). Off, the same call
// sites run the unfused Sort+Limit pair; answers and step logs are
// identical either way (see TestTopKFusionMatchesSortLimit), so the
// toggle exists for differential testing and for bench.sh's
// before/after measurement. cmd/tpchbench's -no-topk flag clears it.
var TopKFusion = true

// topK is the Limit-after-Sort query tail: the fused bounded-heap
// operator by default, the unfused pair when fusion is disabled.
func topK(e *relal.Exec, t *relal.Table, k int, keys ...relal.OrderSpec) *relal.Table {
	if !TopKFusion {
		return e.Limit(e.Sort(t, keys...), k)
	}
	return e.TopK(t, k, keys...)
}

// scan is the pushdown-aware base-table scan every query goes through:
// cols declares the columns the query references from the table and
// conds its sargable predicate, so a columnar source decompresses only
// the chunks that can matter. Pruning is conservative — the query still
// applies its full Filter afterwards — which is why the answers match a
// full scan byte-for-byte.
func scan(e *relal.Exec, db *DB, table string, cols []string, conds ...relal.ZoneCond) *relal.Table {
	return e.ScanSource(db.Src(table), cols, relal.ZonePredicate(conds))
}

// RunQuery executes query id against db, returning the answer and the
// step log. It panics on unknown ids (callers iterate Queries).
func RunQuery(id int, db *DB) (*relal.Table, relal.StepLog) {
	return RunQueryWorkers(id, db, DefaultWorkers)
}

// RunQueryWorkers executes query id with an explicit worker-pool size.
func RunQueryWorkers(id int, db *DB, workers int) (*relal.Table, relal.StepLog) {
	e := &relal.Exec{Parallelism: workers}
	var out *relal.Table
	switch id {
	case 1:
		out = q1(e, db)
	case 2:
		out = q2(e, db)
	case 3:
		out = q3(e, db)
	case 4:
		out = q4(e, db)
	case 5:
		out = q5(e, db)
	case 6:
		out = q6(e, db)
	case 7:
		out = q7(e, db)
	case 8:
		out = q8(e, db)
	case 9:
		out = q9(e, db)
	case 10:
		out = q10(e, db)
	case 11:
		out = q11(e, db)
	case 12:
		out = q12(e, db)
	case 13:
		out = q13(e, db)
	case 14:
		out = q14(e, db)
	case 15:
		out = q15(e, db)
	case 16:
		out = q16(e, db)
	case 17:
		out = q17(e, db)
	case 18:
		out = q18(e, db)
	case 19:
		out = q19(e, db)
	case 20:
		out = q20(e, db)
	case 21:
		out = q21(e, db)
	case 22:
		out = q22(e, db)
	default:
		panic("tpch: unknown query")
	}
	return out, e.Log
}

// discPrice appends the ubiquitous l_extendedprice*(1-l_discount)
// column under the given name.
func discPrice(e *relal.Exec, t *relal.Table, name string) *relal.Table {
	ep := t.FloatCol("l_extendedprice")
	dc := t.FloatCol("l_discount")
	return e.ExtendFloat(t, name, func(i int) float64 {
		return ep.Get(i) * (1 - dc.Get(i))
	})
}

// q1: scan lineitem, filter by shipdate, wide aggregation, sort. The
// shipdate predicate binds once through the StrVec factory: on the
// dict-encoded column it compares a uint32 code against a threshold,
// and the (l_returnflag, l_linestatus) group keys aggregate as codes.
func q1(e *relal.Exec, db *DB) *relal.Table {
	li := scan(e, db, "lineitem",
		[]string{"l_shipdate", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus"},
		relal.StrAtMost("l_shipdate", "1998-09-02"))
	f := e.Where(li, li.StrCol("l_shipdate").Le("1998-09-02"))
	f = discPrice(e, f, "disc_price")
	dp := f.FloatCol("disc_price")
	tax := f.FloatCol("l_tax")
	f = e.ExtendFloat(f, "charge", func(i int) float64 {
		return dp.Get(i) * (1 + tax.Get(i))
	})
	agg := e.Aggregate(f, []string{"l_returnflag", "l_linestatus"}, []relal.AggSpec{
		{Fn: "sum", Col: "l_quantity", As: "sum_qty"},
		{Fn: "sum", Col: "l_extendedprice", As: "sum_base_price"},
		{Fn: "sum", Col: "disc_price", As: "sum_disc_price"},
		{Fn: "sum", Col: "charge", As: "sum_charge"},
		{Fn: "avg", Col: "l_quantity", As: "avg_qty"},
		{Fn: "avg", Col: "l_extendedprice", As: "avg_price"},
		{Fn: "avg", Col: "l_discount", As: "avg_disc"},
		{Fn: "count", Col: "*", As: "count_order"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "l_returnflag"}, relal.OrderSpec{Col: "l_linestatus"})
}

// q2: min-cost supplier for size-15 BRASS parts in EUROPE.
func q2(e *relal.Exec, db *DB) *relal.Table {
	pt := scan(e, db, "part",
		[]string{"p_partkey", "p_mfgr", "p_type", "p_size"},
		relal.IntEq("p_size", 15))
	psize := pt.IntCol("p_size")
	ptype := pt.StrCol("p_type")
	part := e.Filter(pt, func(i int) bool {
		return psize.Get(i) == 15 && strings.HasSuffix(ptype.Get(i), "BRASS")
	})
	rt := scan(e, db, "region", []string{"r_regionkey", "r_name"},
		relal.StrEq("r_name", "EUROPE"))
	region := e.Where(rt, rt.StrCol("r_name").Eq("EUROPE"))
	nation := e.Join(scan(e, db, "nation", []string{"n_nationkey", "n_name", "n_regionkey"}), region, "n_regionkey", "r_regionkey")
	supp := e.Join(scan(e, db, "supplier",
		[]string{"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"}), nation, "s_nationkey", "n_nationkey")
	ps := e.Join(scan(e, db, "partsupp", []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}), supp, "ps_suppkey", "s_suppkey")
	psp := e.Join(ps, part, "ps_partkey", "p_partkey")
	// Minimum supplycost per part (within EUROPE suppliers).
	minCost := e.Aggregate(psp, []string{"p_partkey"}, []relal.AggSpec{
		{Fn: "min", Col: "ps_supplycost", As: "min_cost"},
	})
	// Keep rows matching the per-part minimum.
	minIdx := make(map[int64]float64, minCost.NumRows())
	pk := minCost.IntCol("p_partkey")
	mc := minCost.FloatCol("min_cost")
	for i := 0; i < minCost.NumRows(); i++ {
		minIdx[pk.Get(i)] = mc.Get(i)
	}
	ppk := psp.IntCol("ps_partkey")
	cost := psp.FloatCol("ps_supplycost")
	final := e.Filter(psp, func(i int) bool {
		return cost.Get(i) == minIdx[ppk.Get(i)]
	})
	proj := e.Project(final, "s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment")
	return topK(e, proj, 100,
		relal.OrderSpec{Col: "s_acctbal", Desc: true},
		relal.OrderSpec{Col: "n_name"},
		relal.OrderSpec{Col: "s_name"},
		relal.OrderSpec{Col: "p_partkey"},
	)
}

// q3: top unshipped orders for the BUILDING segment.
func q3(e *relal.Exec, db *DB) *relal.Table {
	ct := scan(e, db, "customer", []string{"c_custkey", "c_mktsegment"},
		relal.StrEq("c_mktsegment", "BUILDING"))
	cust := e.Where(ct, ct.StrCol("c_mktsegment").Eq("BUILDING"))
	ot := scan(e, db, "orders",
		[]string{"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
		relal.StrAtMost("o_orderdate", "1995-03-15"))
	ord := e.Where(ot, ot.StrCol("o_orderdate").Lt("1995-03-15"))
	lt := scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"},
		relal.StrAtLeast("l_shipdate", "1995-03-15"))
	li := e.Where(lt, lt.StrCol("l_shipdate").Gt("1995-03-15"))
	co := e.Join(ord, cust, "o_custkey", "c_custkey")
	col := e.Join(li, co, "l_orderkey", "o_orderkey")
	col = discPrice(e, col, "revenue_item")
	agg := e.Aggregate(col, []string{"l_orderkey", "o_orderdate", "o_shippriority"}, []relal.AggSpec{
		{Fn: "sum", Col: "revenue_item", As: "revenue"},
	})
	return topK(e, agg, 10,
		relal.OrderSpec{Col: "revenue", Desc: true},
		relal.OrderSpec{Col: "o_orderdate"},
	)
}

// q4: order priority with existing late lineitem.
func q4(e *relal.Exec, db *DB) *relal.Table {
	return e.Sort(q4Partial(e, db), relal.OrderSpec{Col: "o_orderpriority"})
}

// q4Partial is Q4 up to (and including) the priority-count aggregate —
// the shard-local fragment of the distributed plan. Every scan, filter,
// and join keys on orderkey, so running it per hash partition and
// summing the counts reproduces the single-process aggregate exactly
// (counts are integers; no accumulation-order sensitivity).
func q4Partial(e *relal.Exec, db *DB) *relal.Table {
	ot := scan(e, db, "orders",
		[]string{"o_orderkey", "o_orderdate", "o_orderpriority"},
		relal.StrBetween("o_orderdate", "1993-07-01", "1993-10-01"))
	ord := e.Where(ot, ot.StrCol("o_orderdate").Range("1993-07-01", "1993-10-01"))
	lt := scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_commitdate", "l_receiptdate"})
	cdate := lt.StrCol("l_commitdate")
	rdate := lt.StrCol("l_receiptdate")
	li := e.Filter(lt, func(i int) bool { return cdate.Get(i) < rdate.Get(i) })
	liKeys := e.Aggregate(li, []string{"l_orderkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n"}})
	sj := e.SemiJoin(ord, liKeys, "o_orderkey", "l_orderkey")
	return e.Aggregate(sj, []string{"o_orderpriority"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "order_count"},
	})
}

// q5: local supplier volume in ASIA. Written order follows the HIVE-600
// script the paper analyzes: nation⋈region, then supplier, then the big
// lineitem common join, then orders, then customer.
func q5(e *relal.Exec, db *DB) *relal.Table {
	rt := scan(e, db, "region", []string{"r_regionkey", "r_name"},
		relal.StrEq("r_name", "ASIA"))
	region := e.Where(rt, rt.StrCol("r_name").Eq("ASIA"))
	nr := e.Join(scan(e, db, "nation", []string{"n_nationkey", "n_name", "n_regionkey"}), region, "n_regionkey", "r_regionkey")
	snr := e.Join(scan(e, db, "supplier", []string{"s_suppkey", "s_nationkey"}), nr, "s_nationkey", "n_nationkey")
	lsnr := e.Join(scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}), snr, "l_suppkey", "s_suppkey")
	ot := scan(e, db, "orders", []string{"o_orderkey", "o_custkey", "o_orderdate"},
		relal.StrBetween("o_orderdate", "1994-01-01", "1995-01-01"))
	ord := e.Where(ot, ot.StrCol("o_orderdate").Range("1994-01-01", "1995-01-01"))
	lo := e.Join(lsnr, ord, "l_orderkey", "o_orderkey")
	// Customer must be in the same nation as the supplier.
	loc := e.Join(lo, scan(e, db, "customer", []string{"c_custkey", "c_nationkey"}), "o_custkey", "c_custkey")
	ck := loc.IntCol("c_nationkey")
	sk := loc.IntCol("s_nationkey")
	same := e.Filter(loc, func(i int) bool { return ck.Get(i) == sk.Get(i) })
	same = discPrice(e, same, "rev")
	agg := e.Aggregate(same, []string{"n_name"}, []relal.AggSpec{
		{Fn: "sum", Col: "rev", As: "revenue"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "revenue", Desc: true})
}

// q6: single-table revenue forecast. The shipdate window binds once as
// a code range over the dictionary — per row the date test is two
// uint32 compares, no string ever touched.
func q6(e *relal.Exec, db *DB) *relal.Table {
	li := scan(e, db, "lineitem",
		[]string{"l_quantity", "l_extendedprice", "l_discount", "l_shipdate"},
		relal.StrBetween("l_shipdate", "1994-01-01", "1995-01-01"),
		relal.FloatBetween("l_discount", 0.05-1e-9, 0.07+1e-9),
		relal.FloatAtMost("l_quantity", 24))
	f := e.Where(li,
		li.StrCol("l_shipdate").Range("1994-01-01", "1995-01-01"),
		li.FloatCol("l_discount").Between(0.05-1e-9, 0.07+1e-9),
		li.FloatCol("l_quantity").Lt(24),
	)
	ep := f.FloatCol("l_extendedprice")
	fdc := f.FloatCol("l_discount")
	f = e.ExtendFloat(f, "rev", func(i int) float64 {
		return ep.Get(i) * fdc.Get(i)
	})
	return e.Aggregate(f, nil, []relal.AggSpec{{Fn: "sum", Col: "rev", As: "revenue"}})
}

// q7: shipping volume between FRANCE and GERMANY.
func q7(e *relal.Exec, db *DB) *relal.Table {
	lt := scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"},
		relal.StrBetween("l_shipdate", "1995-01-01", "1996-12-31"))
	li := e.Where(lt, lt.StrCol("l_shipdate").Between("1995-01-01", "1996-12-31"))
	ls := e.Join(li, scan(e, db, "supplier", []string{"s_suppkey", "s_nationkey"}), "l_suppkey", "s_suppkey")
	lso := e.Join(ls, scan(e, db, "orders", []string{"o_orderkey", "o_custkey"}), "l_orderkey", "o_orderkey")
	lsoc := e.Join(lso, scan(e, db, "customer", []string{"c_custkey", "c_nationkey"}), "o_custkey", "c_custkey")
	// Two nation joins: supplier nation and customer nation.
	n1 := e.Join(lsoc, scan(e, db, "nation", []string{"n_nationkey", "n_name"}), "s_nationkey", "n_nationkey")
	// Rename nation columns for the second join by extending first.
	nname := n1.StrCol("n_name")
	n1 = e.ExtendStr(n1, "supp_nation", func(i int) string { return nname.Get(i) })
	custNation := scan(e, db, "nation", []string{"n_nationkey", "n_name"})
	// nation2 shares the nation table's key/name vectors (zero copy).
	cn := relal.NewTable("nation2", relal.Schema{
		{Name: "n2_nationkey", Type: relal.Int},
		{Name: "cust_nation", Type: relal.Str},
	}, custNation.Cols[0], custNation.Cols[1])
	relal.SetBase(cn, "nation")
	n2 := e.Join(n1, cn, "c_nationkey", "n2_nationkey")
	sn := n2.StrCol("supp_nation")
	cu := n2.StrCol("cust_nation")
	f := e.Filter(n2, func(i int) bool {
		a, b := sn.Get(i), cu.Get(i)
		return (a == "FRANCE" && b == "GERMANY") || (a == "GERMANY" && b == "FRANCE")
	})
	fsd := f.StrCol("l_shipdate")
	f = e.ExtendStr(f, "l_year", func(i int) string { return fsd.Get(i)[:4] })
	f = discPrice(e, f, "volume")
	agg := e.Aggregate(f, []string{"supp_nation", "cust_nation", "l_year"}, []relal.AggSpec{
		{Fn: "sum", Col: "volume", As: "revenue"},
	})
	return e.Sort(agg,
		relal.OrderSpec{Col: "supp_nation"},
		relal.OrderSpec{Col: "cust_nation"},
		relal.OrderSpec{Col: "l_year"},
	)
}

// q8: BRAZIL's market share in AMERICA for a part type.
func q8(e *relal.Exec, db *DB) *relal.Table {
	pt := scan(e, db, "part", []string{"p_partkey", "p_type"},
		relal.StrEq("p_type", "ECONOMY ANODIZED STEEL"))
	part := e.Where(pt, pt.StrCol("p_type").Eq("ECONOMY ANODIZED STEEL"))
	lp := e.Join(scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"}), part, "l_partkey", "p_partkey")
	lps := e.Join(lp, scan(e, db, "supplier", []string{"s_suppkey", "s_nationkey"}), "l_suppkey", "s_suppkey")
	ot := scan(e, db, "orders", []string{"o_orderkey", "o_custkey", "o_orderdate"},
		relal.StrBetween("o_orderdate", "1995-01-01", "1996-12-31"))
	ord := e.Where(ot, ot.StrCol("o_orderdate").Between("1995-01-01", "1996-12-31"))
	lpso := e.Join(lps, ord, "l_orderkey", "o_orderkey")
	lpsoc := e.Join(lpso, scan(e, db, "customer", []string{"c_custkey", "c_nationkey"}), "o_custkey", "c_custkey")
	// Customer nation must be in AMERICA.
	rt := scan(e, db, "region", []string{"r_regionkey", "r_name"},
		relal.StrEq("r_name", "AMERICA"))
	region := e.Where(rt, rt.StrCol("r_name").Eq("AMERICA"))
	nr := e.Join(scan(e, db, "nation", []string{"n_nationkey", "n_regionkey"}), region, "n_regionkey", "r_regionkey")
	custAm := e.Join(lpsoc, nr, "c_nationkey", "n_nationkey")
	// Supplier nation name (shares the nation table's vectors).
	sn := relal.NewTable("nation_s", relal.Schema{
		{Name: "ns_nationkey", Type: relal.Int},
		{Name: "supp_nation", Type: relal.Str},
	}, db.Nation.Cols[0], db.Nation.Cols[1])
	relal.SetBase(sn, "nation")
	all := e.Join(custAm, sn, "s_nationkey", "ns_nationkey")
	aod := all.StrCol("o_orderdate")
	all = e.ExtendStr(all, "o_year", func(i int) string { return aod.Get(i)[:4] })
	all = discPrice(e, all, "volume")
	isBrazil := all.StrCol("supp_nation").Eq("BRAZIL")
	avol := all.FloatCol("volume")
	all = e.ExtendFloat(all, "brazil_volume", func(i int) float64 {
		if isBrazil.At(i) {
			return avol.Get(i)
		}
		return 0.0
	})
	agg := e.Aggregate(all, []string{"o_year"}, []relal.AggSpec{
		{Fn: "sum", Col: "brazil_volume", As: "brazil"},
		{Fn: "sum", Col: "volume", As: "total"},
	})
	tot := agg.FloatCol("total")
	bra := agg.FloatCol("brazil")
	agg = e.ExtendFloat(agg, "mkt_share", func(i int) float64 {
		t := tot.Get(i)
		if t == 0 {
			return 0.0
		}
		return bra.Get(i) / t
	})
	out := e.Project(agg, "o_year", "mkt_share")
	return e.Sort(out, relal.OrderSpec{Col: "o_year"})
}

// q9: profit by nation and year for green parts. The paper notes this
// query ran out of disk in Hive at 16 TB.
func q9(e *relal.Exec, db *DB) *relal.Table {
	pt := scan(e, db, "part", []string{"p_partkey", "p_name"})
	pname := pt.StrCol("p_name")
	part := e.Filter(pt, func(i int) bool { return strings.Contains(pname.Get(i), "green") })
	lp := e.Join(scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"}), part, "l_partkey", "p_partkey")
	lps := e.Join(lp, scan(e, db, "supplier", []string{"s_suppkey", "s_nationkey"}), "l_suppkey", "s_suppkey")
	// partsupp join on (partkey, suppkey): join on partkey then filter.
	lpsps := e.Join(lps, scan(e, db, "partsupp", []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}), "l_partkey", "ps_partkey")
	sk := lpsps.IntCol("l_suppkey")
	pssk := lpsps.IntCol("ps_suppkey")
	match := e.Filter(lpsps, func(i int) bool { return sk.Get(i) == pssk.Get(i) })
	mo := e.Join(match, scan(e, db, "orders", []string{"o_orderkey", "o_orderdate"}), "l_orderkey", "o_orderkey")
	mon := e.Join(mo, scan(e, db, "nation", []string{"n_nationkey", "n_name"}), "s_nationkey", "n_nationkey")
	mod := mon.StrCol("o_orderdate")
	mon = e.ExtendStr(mon, "o_year", func(i int) string { return mod.Get(i)[:4] })
	ep := mon.FloatCol("l_extendedprice")
	dc := mon.FloatCol("l_discount")
	sc := mon.FloatCol("ps_supplycost")
	qty := mon.FloatCol("l_quantity")
	mon = e.ExtendFloat(mon, "amount", func(i int) float64 {
		return ep.Get(i)*(1-dc.Get(i)) - sc.Get(i)*qty.Get(i)
	})
	agg := e.Aggregate(mon, []string{"n_name", "o_year"}, []relal.AggSpec{
		{Fn: "sum", Col: "amount", As: "sum_profit"},
	})
	return e.Sort(agg,
		relal.OrderSpec{Col: "n_name"},
		relal.OrderSpec{Col: "o_year", Desc: true},
	)
}

// q10: customers who returned items.
func q10(e *relal.Exec, db *DB) *relal.Table {
	ot := scan(e, db, "orders", []string{"o_orderkey", "o_custkey", "o_orderdate"},
		relal.StrBetween("o_orderdate", "1993-10-01", "1994-01-01"))
	ord := e.Where(ot, ot.StrCol("o_orderdate").Range("1993-10-01", "1994-01-01"))
	lt := scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"},
		relal.StrEq("l_returnflag", "R"))
	li := e.Where(lt, lt.StrCol("l_returnflag").Eq("R"))
	lo := e.Join(li, ord, "l_orderkey", "o_orderkey")
	loc := e.Join(lo, scan(e, db, "customer",
		[]string{"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal", "c_comment"}), "o_custkey", "c_custkey")
	locn := e.Join(loc, scan(e, db, "nation", []string{"n_nationkey", "n_name"}), "c_nationkey", "n_nationkey")
	locn = discPrice(e, locn, "rev")
	agg := e.Aggregate(locn, []string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"}, []relal.AggSpec{
		{Fn: "sum", Col: "rev", As: "revenue"},
	})
	return topK(e, agg, 20, relal.OrderSpec{Col: "revenue", Desc: true})
}

// q11: important stock in GERMANY.
func q11(e *relal.Exec, db *DB) *relal.Table {
	nt := scan(e, db, "nation", []string{"n_nationkey", "n_name"},
		relal.StrEq("n_name", "GERMANY"))
	nation := e.Where(nt, nt.StrCol("n_name").Eq("GERMANY"))
	sn := e.Join(scan(e, db, "supplier", []string{"s_suppkey", "s_nationkey"}), nation, "s_nationkey", "n_nationkey")
	ps := e.Join(scan(e, db, "partsupp",
		[]string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}), sn, "ps_suppkey", "s_suppkey")
	cost := ps.FloatCol("ps_supplycost")
	avail := ps.IntCol("ps_availqty")
	ps = e.ExtendFloat(ps, "value", func(i int) float64 {
		return cost.Get(i) * float64(avail.Get(i))
	})
	total := e.Aggregate(ps, nil, []relal.AggSpec{{Fn: "sum", Col: "value", As: "total"}})
	// The spec's fraction is 0.0001/SF, which scales so the query
	// returns a similar-sized answer at every scale factor.
	threshold := 0.0
	if total.NumRows() > 0 {
		threshold = total.FloatCol("total").Get(0) * 0.0001 / db.SF
	}
	byPart := e.Aggregate(ps, []string{"ps_partkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "value", As: "value"},
	})
	val := byPart.FloatCol("value")
	f := e.Filter(byPart, func(i int) bool { return val.Get(i) > threshold })
	return e.Sort(f, relal.OrderSpec{Col: "value", Desc: true})
}

// q12: shipping modes and order priority.
func q12(e *relal.Exec, db *DB) *relal.Table {
	return e.Sort(q12Partial(e, db), relal.OrderSpec{Col: "l_shipmode"})
}

// q12Partial is Q12 up to the per-shipmode sums — the shard-local
// fragment. The lineitem–orders join is colocated under orderkey
// hashing, and the summed columns hold only 0/1 integers, so per-shard
// partial sums (exact in float64) add back to the global answer with no
// rounding drift.
func q12Partial(e *relal.Exec, db *DB) *relal.Table {
	lt := scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipmode"},
		relal.StrBetween("l_receiptdate", "1994-01-01", "1995-01-01"))
	commit := lt.StrCol("l_commitdate")
	receipt := lt.StrCol("l_receiptdate")
	ship := lt.StrCol("l_shipdate")
	li := e.Where(lt,
		lt.StrCol("l_shipmode").In("MAIL", "SHIP"),
		lt.StrCol("l_receiptdate").Range("1994-01-01", "1995-01-01"),
		relal.PredFn(func(i int) bool {
			c := commit.Get(i)
			return c < receipt.Get(i) && ship.Get(i) < c
		}),
	)
	lo := e.Join(li, scan(e, db, "orders", []string{"o_orderkey", "o_orderpriority"}), "l_orderkey", "o_orderkey")
	isHigh := lo.StrCol("o_orderpriority").In("1-URGENT", "2-HIGH")
	lo = e.ExtendInt(lo, "high_line", func(i int) int64 {
		if isHigh.At(i) {
			return 1
		}
		return 0
	})
	high := lo.IntCol("high_line")
	lo = e.ExtendInt(lo, "low_line", func(i int) int64 {
		if high.Get(i) == 1 {
			return 0
		}
		return 1
	})
	return e.Aggregate(lo, []string{"l_shipmode"}, []relal.AggSpec{
		{Fn: "sum", Col: "high_line", As: "high_line_count"},
		{Fn: "sum", Col: "low_line", As: "low_line_count"},
	})
}

// q13: distribution of customers by order count.
func q13(e *relal.Exec, db *DB) *relal.Table {
	ot := scan(e, db, "orders", []string{"o_custkey", "o_comment"})
	ocomment := ot.StrCol("o_comment")
	ord := e.Filter(ot, func(i int) bool {
		c := ocomment.Get(i)
		j := strings.Index(c, "special")
		return j < 0 || !strings.Contains(c[j:], "requests")
	})
	perCust := e.Aggregate(ord, []string{"o_custkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "c_count"},
	})
	cust := scan(e, db, "customer", []string{"c_custkey"})
	// Left join: customers with no orders count 0. Model as join plus
	// the complement.
	joined := e.Join(cust, perCust, "c_custkey", "o_custkey")
	matched := e.Project(joined, "c_custkey", "c_count")
	unmatched := e.AntiJoin(cust, perCust, "c_custkey", "o_custkey")
	keys := make([]int64, 0, matched.NumRows()+unmatched.NumRows())
	counts := make([]int64, 0, matched.NumRows()+unmatched.NumRows())
	mk := matched.IntCol("c_custkey")
	mc := matched.IntCol("c_count")
	for i := 0; i < matched.NumRows(); i++ {
		keys = append(keys, mk.Get(i))
		counts = append(counts, mc.Get(i))
	}
	uk := unmatched.IntCol("c_custkey")
	for i := 0; i < unmatched.NumRows(); i++ {
		keys = append(keys, uk.Get(i))
		counts = append(counts, 0)
	}
	all := relal.NewTable("cust_counts", relal.Schema{
		{Name: "c_custkey", Type: relal.Int},
		{Name: "c_count", Type: relal.Int},
	}, relal.IntsV(keys), relal.IntsV(counts))
	dist := e.Aggregate(all, []string{"c_count"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "custdist"},
	})
	return e.Sort(dist,
		relal.OrderSpec{Col: "custdist", Desc: true},
		relal.OrderSpec{Col: "c_count", Desc: true},
	)
}

// q14: promotion effect for one month.
func q14(e *relal.Exec, db *DB) *relal.Table {
	lt := scan(e, db, "lineitem",
		[]string{"l_partkey", "l_extendedprice", "l_discount", "l_shipdate"},
		relal.StrBetween("l_shipdate", "1995-09-01", "1995-10-01"))
	li := e.Where(lt, lt.StrCol("l_shipdate").Range("1995-09-01", "1995-10-01"))
	lp := e.Join(li, scan(e, db, "part", []string{"p_partkey", "p_type"}), "l_partkey", "p_partkey")
	lp = discPrice(e, lp, "rev")
	// Prefix match as a code range: PROMO-typed parts are contiguous in
	// the sorted p_type dictionary.
	isPromo := lp.StrCol("p_type").HasPrefix("PROMO")
	rev := lp.FloatCol("rev")
	lp = e.ExtendFloat(lp, "promo_rev", func(i int) float64 {
		if isPromo.At(i) {
			return rev.Get(i)
		}
		return 0.0
	})
	agg := e.Aggregate(lp, nil, []relal.AggSpec{
		{Fn: "sum", Col: "promo_rev", As: "promo"},
		{Fn: "sum", Col: "rev", As: "total"},
	})
	promo := agg.FloatCol("promo")
	tot := agg.FloatCol("total")
	return e.ExtendFloat(agg, "promo_revenue", func(i int) float64 {
		t := tot.Get(i)
		if t == 0 {
			return 0.0
		}
		return 100 * promo.Get(i) / t
	})
}

// q15: top supplier by quarterly revenue.
func q15(e *relal.Exec, db *DB) *relal.Table {
	lt := scan(e, db, "lineitem",
		[]string{"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"},
		relal.StrBetween("l_shipdate", "1996-01-01", "1996-04-01"))
	li := e.Where(lt, lt.StrCol("l_shipdate").Range("1996-01-01", "1996-04-01"))
	li = discPrice(e, li, "rev")
	revenue := e.Aggregate(li, []string{"l_suppkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "rev", As: "total_revenue"},
	})
	maxRev := e.Aggregate(revenue, nil, []relal.AggSpec{
		{Fn: "max", Col: "total_revenue", As: "max_rev"},
	})
	mx := 0.0
	if maxRev.NumRows() > 0 {
		mx = maxRev.FloatCol("max_rev").Get(0)
	}
	tr := revenue.FloatCol("total_revenue")
	top := e.Filter(revenue, func(i int) bool { return tr.Get(i) >= mx-1e-6 })
	st := e.Join(top, scan(e, db, "supplier",
		[]string{"s_suppkey", "s_name", "s_address", "s_phone"}), "l_suppkey", "s_suppkey")
	proj := e.Project(st, "s_suppkey", "s_name", "s_address", "s_phone", "total_revenue")
	return e.Sort(proj, relal.OrderSpec{Col: "s_suppkey"})
}

// q16: supplier counts by part attributes, excluding complaint suppliers.
func q16(e *relal.Exec, db *DB) *relal.Table {
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	pt := scan(e, db, "part", []string{"p_partkey", "p_brand", "p_type", "p_size"},
		relal.IntBetween("p_size", 3, 49))
	psize := pt.IntCol("p_size")
	part := e.Where(pt,
		pt.StrCol("p_brand").Ne("Brand#45"),
		relal.Not(pt.StrCol("p_type").HasPrefix("MEDIUM POLISHED")),
		relal.PredFn(func(i int) bool { return sizes[psize.Get(i)] }),
	)
	st := scan(e, db, "supplier", []string{"s_suppkey", "s_comment"})
	scomment := st.StrCol("s_comment")
	complaints := e.Filter(st, func(i int) bool {
		c := scomment.Get(i)
		j := strings.Index(c, "Customer")
		return j >= 0 && strings.Contains(c[j:], "Complaints")
	})
	ps := e.AntiJoin(scan(e, db, "partsupp", []string{"ps_partkey", "ps_suppkey"}), complaints, "ps_suppkey", "s_suppkey")
	psp := e.Join(ps, part, "ps_partkey", "p_partkey")
	// count(distinct ps_suppkey): dedup then count.
	dedup := e.Aggregate(psp, []string{"p_brand", "p_type", "p_size", "ps_suppkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "n"},
	})
	agg := e.Aggregate(dedup, []string{"p_brand", "p_type", "p_size"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "supplier_cnt"},
	})
	return e.Sort(agg,
		relal.OrderSpec{Col: "supplier_cnt", Desc: true},
		relal.OrderSpec{Col: "p_brand"},
		relal.OrderSpec{Col: "p_type"},
		relal.OrderSpec{Col: "p_size"},
	)
}

// q17: small-quantity-order revenue for one brand/container.
func q17(e *relal.Exec, db *DB) *relal.Table {
	pt := scan(e, db, "part", []string{"p_partkey", "p_brand", "p_container"},
		relal.StrEq("p_brand", "Brand#23"),
		relal.StrEq("p_container", "MED BOX"))
	part := e.Where(pt,
		pt.StrCol("p_brand").Eq("Brand#23"),
		pt.StrCol("p_container").Eq("MED BOX"),
	)
	lp := e.Join(scan(e, db, "lineitem",
		[]string{"l_partkey", "l_quantity", "l_extendedprice"}), part, "l_partkey", "p_partkey")
	avgQty := e.Aggregate(lp, []string{"p_partkey"}, []relal.AggSpec{
		{Fn: "avg", Col: "l_quantity", As: "avg_qty"},
	})
	avgIdx := make(map[int64]float64, avgQty.NumRows())
	pk := avgQty.IntCol("p_partkey")
	aq := avgQty.FloatCol("avg_qty")
	for i := 0; i < avgQty.NumRows(); i++ {
		avgIdx[pk.Get(i)] = aq.Get(i)
	}
	lpk := lp.IntCol("l_partkey")
	qty := lp.FloatCol("l_quantity")
	f := e.Filter(lp, func(i int) bool {
		return qty.Get(i) < 0.2*avgIdx[lpk.Get(i)]
	})
	agg := e.Aggregate(f, nil, []relal.AggSpec{
		{Fn: "sum", Col: "l_extendedprice", As: "sum_price"},
	})
	sp := agg.FloatCol("sum_price")
	return e.ExtendFloat(agg, "avg_yearly", func(i int) float64 {
		return sp.Get(i) / 7.0
	})
}

// q18: large-volume customers (sum qty > 300).
func q18(e *relal.Exec, db *DB) *relal.Table {
	li := scan(e, db, "lineitem", []string{"l_orderkey", "l_quantity"})
	perOrder := e.Aggregate(li, []string{"l_orderkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "l_quantity", As: "sum_qty"},
	})
	sq := perOrder.FloatCol("sum_qty")
	big := e.Filter(perOrder, func(i int) bool { return sq.Get(i) > 300 })
	bo := e.Join(big, scan(e, db, "orders",
		[]string{"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"}), "l_orderkey", "o_orderkey")
	boc := e.Join(bo, scan(e, db, "customer", []string{"c_custkey", "c_name"}), "o_custkey", "c_custkey")
	proj := e.Project(boc, "c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty")
	return topK(e, proj, 100,
		relal.OrderSpec{Col: "o_totalprice", Desc: true},
		relal.OrderSpec{Col: "o_orderdate"},
	)
}

// q19: discounted revenue with the three-branch AND/OR predicate the
// paper's §3.3.4.1 analysis discusses.
func q19(e *relal.Exec, db *DB) *relal.Table {
	lp := e.Join(
		scan(e, db, "lineitem",
			[]string{"l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipinstruct", "l_shipmode"},
			relal.StrEq("l_shipinstruct", "DELIVER IN PERSON")),
		scan(e, db, "part", []string{"p_partkey", "p_brand", "p_size", "p_container"}),
		"l_partkey", "p_partkey")
	// Every string leg of the three-branch predicate binds to codes
	// once; per row the branch dispatch is integer compares only.
	brand := lp.StrCol("p_brand")
	container := lp.StrCol("p_container")
	b12, b23, b34 := brand.Eq("Brand#12"), brand.Eq("Brand#23"), brand.Eq("Brand#34")
	cSM := container.In("SM CASE", "SM BOX", "SM PACK", "SM PKG")
	cMED := container.In("MED BAG", "MED BOX", "MED PKG", "MED PACK")
	cLG := container.In("LG CASE", "LG BOX", "LG PACK", "LG PKG")
	wantMode := lp.StrCol("l_shipmode").In("AIR", "REG AIR")
	wantInstr := lp.StrCol("l_shipinstruct").Eq("DELIVER IN PERSON")
	qty := lp.FloatCol("l_quantity")
	size := lp.IntCol("p_size")
	f := e.Where(lp, wantMode, wantInstr, relal.PredFn(func(i int) bool {
		q := qty.Get(i)
		sz := size.Get(i)
		switch {
		case b12.At(i) && cSM.At(i) && q >= 1 && q <= 11 && sz >= 1 && sz <= 5:
			return true
		case b23.At(i) && cMED.At(i) && q >= 10 && q <= 20 && sz >= 1 && sz <= 10:
			return true
		case b34.At(i) && cLG.At(i) && q >= 20 && q <= 30 && sz >= 1 && sz <= 15:
			return true
		}
		return false
	}))
	f = discPrice(e, f, "rev")
	return e.Aggregate(f, nil, []relal.AggSpec{{Fn: "sum", Col: "rev", As: "revenue"}})
}

// q20: suppliers with surplus forest parts in CANADA.
func q20(e *relal.Exec, db *DB) *relal.Table {
	pt := scan(e, db, "part", []string{"p_partkey", "p_name"})
	part := e.Where(pt, pt.StrCol("p_name").HasPrefix("forest"))
	lt := scan(e, db, "lineitem",
		[]string{"l_partkey", "l_suppkey", "l_quantity", "l_shipdate"},
		relal.StrBetween("l_shipdate", "1994-01-01", "1995-01-01"))
	li := e.Where(lt, lt.StrCol("l_shipdate").Range("1994-01-01", "1995-01-01"))
	shipped := e.Aggregate(li, []string{"l_partkey", "l_suppkey"}, []relal.AggSpec{
		{Fn: "sum", Col: "l_quantity", As: "sum_qty"},
	})
	shippedIdx := make(map[[2]int64]float64, shipped.NumRows())
	spk := shipped.IntCol("l_partkey")
	ssk := shipped.IntCol("l_suppkey")
	sql := shipped.FloatCol("sum_qty")
	for i := 0; i < shipped.NumRows(); i++ {
		shippedIdx[[2]int64{spk.Get(i), ssk.Get(i)}] = sql.Get(i)
	}
	ps := e.SemiJoin(scan(e, db, "partsupp",
		[]string{"ps_partkey", "ps_suppkey", "ps_availqty"}), part, "ps_partkey", "p_partkey")
	pspk := ps.IntCol("ps_partkey")
	pssk := ps.IntCol("ps_suppkey")
	avail := ps.IntCol("ps_availqty")
	surplus := e.Filter(ps, func(i int) bool {
		return float64(avail.Get(i)) > 0.5*shippedIdx[[2]int64{pspk.Get(i), pssk.Get(i)}]
	})
	nt := scan(e, db, "nation", []string{"n_nationkey", "n_name"},
		relal.StrEq("n_name", "CANADA"))
	nation := e.Where(nt, nt.StrCol("n_name").Eq("CANADA"))
	supp := e.Join(scan(e, db, "supplier",
		[]string{"s_suppkey", "s_name", "s_address", "s_nationkey"}), nation, "s_nationkey", "n_nationkey")
	final := e.SemiJoin(supp, surplus, "s_suppkey", "ps_suppkey")
	proj := e.Project(final, "s_name", "s_address")
	return e.Sort(proj, relal.OrderSpec{Col: "s_name"})
}

// q21: suppliers in SAUDI ARABIA who kept multi-supplier orders waiting.
func q21(e *relal.Exec, db *DB) *relal.Table {
	li := scan(e, db, "lineitem",
		[]string{"l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"})
	// Suppliers per order, and late suppliers per order.
	perOrder := e.Aggregate(
		e.Aggregate(li, []string{"l_orderkey", "l_suppkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n"}}),
		[]string{"l_orderkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n_supp"}})
	rdate := li.StrCol("l_receiptdate")
	cdate := li.StrCol("l_commitdate")
	late := e.Filter(li, func(i int) bool { return rdate.Get(i) > cdate.Get(i) })
	latePerOrder := e.Aggregate(
		e.Aggregate(late, []string{"l_orderkey", "l_suppkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n"}}),
		[]string{"l_orderkey"}, []relal.AggSpec{{Fn: "count", Col: "*", As: "n_late"}})
	nSupp := make(map[int64]int64, perOrder.NumRows())
	pok := perOrder.IntCol("l_orderkey")
	pon := perOrder.IntCol("n_supp")
	for i := 0; i < perOrder.NumRows(); i++ {
		nSupp[pok.Get(i)] = pon.Get(i)
	}
	nLate := make(map[int64]int64, latePerOrder.NumRows())
	lok := latePerOrder.IntCol("l_orderkey")
	lon := latePerOrder.IntCol("n_late")
	for i := 0; i < latePerOrder.NumRows(); i++ {
		nLate[lok.Get(i)] = lon.Get(i)
	}
	// Candidate rows: this supplier was late, order has >1 suppliers,
	// and exactly one late supplier (this one), on F orders.
	ot := scan(e, db, "orders", []string{"o_orderkey", "o_orderstatus"},
		relal.StrEq("o_orderstatus", "F"))
	ord := e.Where(ot, ot.StrCol("o_orderstatus").Eq("F"))
	lko := late.IntCol("l_orderkey")
	lateRows := e.Filter(late, func(i int) bool {
		ok := lko.Get(i)
		return nSupp[ok] > 1 && nLate[ok] == 1
	})
	lo := e.SemiJoin(lateRows, ord, "l_orderkey", "o_orderkey")
	ls := e.Join(lo, scan(e, db, "supplier",
		[]string{"s_suppkey", "s_name", "s_nationkey"}), "l_suppkey", "s_suppkey")
	nt := scan(e, db, "nation", []string{"n_nationkey", "n_name"},
		relal.StrEq("n_name", "SAUDI ARABIA"))
	nation := e.Where(nt, nt.StrCol("n_name").Eq("SAUDI ARABIA"))
	lsn := e.Join(ls, nation, "s_nationkey", "n_nationkey")
	// One row per (order, supplier) — dedup before counting.
	dedup := e.Aggregate(lsn, []string{"s_name", "l_orderkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "n"},
	})
	agg := e.Aggregate(dedup, []string{"s_name"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "numwait"},
	})
	return topK(e, agg, 100,
		relal.OrderSpec{Col: "numwait", Desc: true},
		relal.OrderSpec{Col: "s_name"},
	)
}

// q22: customers with above-average balances and no orders, by phone
// country code. In Hive this runs as four sub-queries (the paper's
// Table 5 breakdown).
func q22(e *relal.Exec, db *DB) *relal.Table {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	ct := scan(e, db, "customer", []string{"c_custkey", "c_phone", "c_acctbal"})
	cphone := ct.StrCol("c_phone")
	// Sub-query 1: candidate customers by phone code.
	cust := e.Filter(ct, func(i int) bool { return codes[cphone.Get(i)[:2]] })
	// Sub-query 2: average positive balance among them.
	cbal := cust.FloatCol("c_acctbal")
	pos := e.Filter(cust, func(i int) bool { return cbal.Get(i) > 0 })
	avg := e.Aggregate(pos, nil, []relal.AggSpec{{Fn: "avg", Col: "c_acctbal", As: "avg_bal"}})
	avgBal := 0.0
	if avg.NumRows() > 0 {
		avgBal = avg.FloatCol("avg_bal").Get(0)
	}
	// Sub-query 3: order keys (customers with orders).
	ordCust := e.Aggregate(scan(e, db, "orders", []string{"o_custkey"}), []string{"o_custkey"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "n"},
	})
	// Sub-query 4: join it all.
	rich := e.Filter(cust, func(i int) bool { return cbal.Get(i) > avgBal })
	noOrders := e.AntiJoin(rich, ordCust, "c_custkey", "o_custkey")
	nphone := noOrders.StrCol("c_phone")
	noOrders = e.ExtendStr(noOrders, "cntrycode", func(i int) string {
		return nphone.Get(i)[:2]
	})
	agg := e.Aggregate(noOrders, []string{"cntrycode"}, []relal.AggSpec{
		{Fn: "count", Col: "*", As: "numcust"},
		{Fn: "sum", Col: "c_acctbal", As: "totacctbal"},
	})
	return e.Sort(agg, relal.OrderSpec{Col: "cntrycode"})
}
