package tpch

import (
	"fmt"
	"testing"
)

// BenchmarkTPCHSortQuery times the three sort-tailed query shapes the
// parallel sort moves most — Q1 (wide aggregate then full sort), Q3
// (join-heavy top-10) and Q10 (aggregate-heavy top-20) — at pool size 1
// vs GOMAXPROCS. scripts/bench.sh records the ratio in BENCH_PR4.json;
// on a 1-core host the speedup is ≈1 by construction.
func BenchmarkTPCHSortQuery(b *testing.B) {
	db := Generate(GenConfig{SF: 0.01, Seed: 1, Random64: true})
	for _, id := range []int{1, 3, 10} {
		for _, pool := range []struct {
			name    string
			workers int
		}{{"workers=1", 1}, {"workers=max", 0}} {
			b.Run(fmt.Sprintf("Q%d/%s", id, pool.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					RunQueryWorkers(id, db, pool.workers)
				}
			})
		}
	}
}
