// Concurrent query streams: the paper-side scale experiment the
// columnar executor unlocks. Vectors are immutable after generation and
// every operator output is private to its Exec, so N goroutine streams
// can replay the 22 queries against one shared DB with no coordination
// beyond the source registry mutex — the Polynesia-style
// shared-immutable-data concurrency model. The harness measures
// aggregate throughput (queries per second) and per-query wall time,
// and optionally validates every answer in-flight.
package tpch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"elephants/internal/relal"
)

// StreamConfig scopes one concurrent-stream run.
type StreamConfig struct {
	// Streams is the number of concurrent query streams (0 = 1).
	Streams int
	// Rounds is how many times each stream replays the query list
	// (0 = 1).
	Rounds int
	// Workers sizes each query's morsel worker pool (0 = GOMAXPROCS,
	// 1 = serial). Streams multiply with workers: total goroutine-level
	// parallelism is bounded by Streams × Workers.
	Workers int
	// Queries restricts the replayed query IDs (nil = all 22).
	Queries []int
	// Warmup runs one untimed serial round first, so lazily-built state
	// (source registry, zone-map caches, width caches) is in place
	// before the clock starts.
	Warmup bool
	// Check, when non-nil, is called with every answer produced by every
	// stream; a non-nil error is collected into the result. Callers use
	// it to pin stream answers against the golden snapshot.
	Check func(stream, round, id int, out *relal.Table) error
}

// StreamResult reports one run.
type StreamResult struct {
	Streams, Rounds, Workers int
	// Queries is the total number of queries executed across streams.
	Queries int
	// Elapsed is the wall time of the timed phase.
	Elapsed time.Duration
	// QPS is Queries / Elapsed.
	QPS float64
	// PerQuery accumulates wall time per query ID, summed across
	// streams and rounds.
	PerQuery map[int]time.Duration
	// PerQuerySort accumulates time spent inside the Sort/TopK kernels
	// per query ID (from each Exec's StepLog.SortNanos), so harnesses
	// can report every query's sort share of wall time.
	PerQuerySort map[int]time.Duration
	// Scanned is the byte accounting summed over every scan step of
	// every stream (per-Exec step logs merged after the run).
	Scanned relal.ScanStats
	// Errors collects Check failures (nil when every answer passed).
	Errors []error
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if len(c.Queries) == 0 {
		for _, q := range Queries {
			c.Queries = append(c.Queries, q.ID)
		}
	}
	return c
}

// streamTally is one stream's private measurement state, merged under a
// lock only after the stream finishes.
type streamTally struct {
	perQuery     map[int]time.Duration
	perQuerySort map[int]time.Duration
	scanned      relal.ScanStats
	queries      int
	errs         []error
}

// RunStreams replays the configured queries as cfg.Streams concurrent
// goroutine streams over the shared db and reports aggregate throughput.
// Every stream runs the same query list in the same order; answers are
// identical across streams, rounds, and worker counts (see the golden
// stream tests), so throughput is the only thing that varies.
func RunStreams(db *DB, cfg StreamConfig) StreamResult {
	cfg = cfg.withDefaults()
	if cfg.Warmup {
		for _, id := range cfg.Queries {
			RunQueryWorkers(id, db, 1)
		}
	}

	tallies := make([]streamTally, cfg.Streams)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tally := streamTally{
				perQuery:     make(map[int]time.Duration),
				perQuerySort: make(map[int]time.Duration),
			}
			for round := 0; round < cfg.Rounds; round++ {
				for _, id := range cfg.Queries {
					qStart := time.Now()
					out, log := RunQueryWorkers(id, db, cfg.Workers)
					tally.perQuery[id] += time.Since(qStart)
					tally.perQuerySort[id] += time.Duration(log.SortNanos)
					tally.queries++
					for _, step := range log.Steps {
						if step.Kind == relal.StepScan {
							tally.scanned.Add(relal.ScanStats{
								BytesRead:     step.ScanBytesRead,
								BytesSkipped:  step.ScanBytesSkipped,
								GroupsRead:    step.ScanGroupsRead,
								GroupsSkipped: step.ScanGroupsSkipped,
							})
						}
					}
					if cfg.Check != nil {
						if err := cfg.Check(s, round, id, out); err != nil {
							tally.errs = append(tally.errs,
								fmt.Errorf("stream %d round %d Q%d: %w", s, round, id, err))
						}
					}
				}
			}
			tallies[s] = tally
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) // report the pool size 0 resolves to
	}
	res := StreamResult{
		Streams: cfg.Streams, Rounds: cfg.Rounds, Workers: workers,
		Elapsed:      elapsed,
		PerQuery:     make(map[int]time.Duration),
		PerQuerySort: make(map[int]time.Duration),
	}
	for _, tally := range tallies {
		res.Queries += tally.queries
		for id, d := range tally.perQuery {
			res.PerQuery[id] += d
		}
		for id, d := range tally.perQuerySort {
			res.PerQuerySort[id] += d
		}
		res.Scanned.Add(tally.scanned)
		res.Errors = append(res.Errors, tally.errs...)
	}
	if elapsed > 0 {
		res.QPS = float64(res.Queries) / elapsed.Seconds()
	}
	return res
}

// QueryIDs returns the per-query keys of the result in ascending order.
func (r StreamResult) QueryIDs() []int {
	ids := make([]int, 0, len(r.PerQuery))
	for id := range r.PerQuery {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
