// Concurrent query streams: the paper-side scale experiment the
// columnar executor unlocks. Vectors are immutable after generation and
// every operator output is private to its Exec, so N goroutine streams
// can replay the 22 queries against one shared DB with no coordination
// beyond the source registry mutex — the Polynesia-style
// shared-immutable-data concurrency model. The harness measures
// aggregate throughput (queries per second) and per-query wall time,
// and optionally validates every answer in-flight.
package tpch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"elephants/internal/relal"
)

// StreamConfig scopes one concurrent-stream run.
type StreamConfig struct {
	// Streams is the number of concurrent query streams (0 = 1).
	Streams int
	// Rounds is how many times each stream replays the query list
	// (0 = 1).
	Rounds int
	// Workers is each query's admission cap on the shared morsel
	// scheduler (0 = uncapped, 1 = serial). All streams share one
	// process-wide pool of relal.PoolSize() workers, so streams do NOT
	// multiply with workers: total execution parallelism is bounded by
	// the pool regardless of stream count.
	Workers int
	// Queries restricts the replayed query IDs (nil = all 22).
	Queries []int
	// Warmup runs one untimed serial round first, so lazily-built state
	// (source registry, zone-map caches, width caches) is in place
	// before the clock starts.
	Warmup bool
	// NoResultCache disables result memoization: every round of every
	// stream re-executes its queries even when the DB epoch is
	// unchanged. The cache is on by default because the workload is
	// read-only between explicit mutations (SetSource/Cluster bump the
	// epoch and naturally invalidate).
	NoResultCache bool
	// Check, when non-nil, is called with every answer produced by every
	// stream — including memoized ones; a non-nil error is collected
	// into the result. Callers use it to pin stream answers against the
	// golden snapshot.
	Check func(stream, round, id int, out *relal.Table) error
}

// StreamResult reports one run.
type StreamResult struct {
	Streams, Rounds int
	// Workers is the resolved per-stream admission cap: how many morsels
	// of one stream's current query may execute at once. It never
	// exceeds PoolWorkers — the old streams × workers oversubscription
	// arithmetic is gone because streams share the pool.
	Workers int
	// PoolWorkers is the size of the process-wide morsel worker pool all
	// streams drew from (relal.PoolSize()).
	PoolWorkers int
	// Queries is the total number of queries answered across streams,
	// memoized answers included.
	Queries int
	// Elapsed is the wall time of the timed phase.
	Elapsed time.Duration
	// QPS is Queries / Elapsed.
	QPS float64
	// PerQuery accumulates wall time per query ID, summed across
	// streams and rounds.
	PerQuery map[int]time.Duration
	// PerQuerySort accumulates time spent inside the Sort/TopK kernels
	// per query ID (from each Exec's StepLog.SortNanos), so harnesses
	// can report every query's sort share of wall time.
	PerQuerySort map[int]time.Duration
	// Scanned is the byte accounting summed over every scan step of
	// every stream (per-Exec step logs merged after the run). Memoized
	// answers execute no scans and so add nothing here.
	Scanned relal.ScanStats
	// ResultCacheHits counts queries answered from the per-(query, DB
	// epoch) result memo instead of being executed.
	ResultCacheHits int
	// Errors collects Check failures (nil when every answer passed).
	Errors []error
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if len(c.Queries) == 0 {
		for _, q := range Queries {
			c.Queries = append(c.Queries, q.ID)
		}
	}
	return c
}

// streamTally is one stream's private measurement state, merged under a
// lock only after the stream finishes.
type streamTally struct {
	perQuery     map[int]time.Duration
	perQuerySort map[int]time.Duration
	scanned      relal.ScanStats
	queries      int
	memoHits     int
	errs         []error
}

// resultKey addresses one memoized answer: the query and the DB epoch
// it was computed at. An epoch bump (SetSource, Cluster, BumpEpoch)
// changes every key, so stale answers are simply never looked up again.
type resultKey struct {
	id    int
	epoch uint64
}

// RunStreams replays the configured queries as cfg.Streams concurrent
// goroutine streams over the shared db and reports aggregate throughput.
// Every stream runs the same query list in the same order; answers are
// identical across streams, rounds, and worker counts (see the golden
// stream tests), so throughput is the only thing that varies.
func RunStreams(db *DB, cfg StreamConfig) StreamResult {
	cfg = cfg.withDefaults()
	if cfg.Warmup {
		for _, id := range cfg.Queries {
			RunQueryWorkers(id, db, 1)
		}
	}

	// memo holds answers computed during the timed phase, keyed by
	// (query, epoch). Scoped to the run: the warmup round deliberately
	// does not populate it, so the first timed execution of each query
	// still scans (and is what the throughput numbers without repeated
	// rounds measure). Answer tables are immutable once built, so a
	// cached *relal.Table is shared by reference.
	var memo sync.Map

	tallies := make([]streamTally, cfg.Streams)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tally := streamTally{
				perQuery:     make(map[int]time.Duration),
				perQuerySort: make(map[int]time.Duration),
			}
			for round := 0; round < cfg.Rounds; round++ {
				for _, id := range cfg.Queries {
					qStart := time.Now()
					var out *relal.Table
					key := resultKey{id: id, epoch: db.Epoch()}
					if !cfg.NoResultCache {
						if v, ok := memo.Load(key); ok {
							out = v.(*relal.Table)
							tally.memoHits++
						}
					}
					if out == nil {
						var log relal.StepLog
						out, log = RunQueryWorkers(id, db, cfg.Workers)
						tally.perQuerySort[id] += time.Duration(log.SortNanos)
						for _, step := range log.Steps {
							if step.Kind == relal.StepScan {
								tally.scanned.Add(relal.ScanStats{
									BytesRead:      step.ScanBytesRead,
									BytesSkipped:   step.ScanBytesSkipped,
									BytesFromCache: step.ScanBytesFromCache,
									GroupsRead:     step.ScanGroupsRead,
									GroupsSkipped:  step.ScanGroupsSkipped,
									CacheHits:      step.ScanCacheHits,
									CacheMisses:    step.ScanCacheMisses,
									CorruptChunks:  step.ScanCorruptChunks,
								})
							}
						}
						if !cfg.NoResultCache {
							memo.Store(key, out)
						}
					}
					tally.perQuery[id] += time.Since(qStart)
					tally.queries++
					if cfg.Check != nil {
						if err := cfg.Check(s, round, id, out); err != nil {
							tally.errs = append(tally.errs,
								fmt.Errorf("stream %d round %d Q%d: %w", s, round, id, err))
						}
					}
				}
			}
			tallies[s] = tally
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	pool := relal.PoolSize()
	workers := cfg.Workers
	if workers <= 0 || workers > pool {
		workers = pool // the cap a stream can actually be admitted at
	}
	res := StreamResult{
		Streams: cfg.Streams, Rounds: cfg.Rounds,
		Workers: workers, PoolWorkers: pool,
		Elapsed:      elapsed,
		PerQuery:     make(map[int]time.Duration),
		PerQuerySort: make(map[int]time.Duration),
	}
	for _, tally := range tallies {
		res.Queries += tally.queries
		res.ResultCacheHits += tally.memoHits
		for id, d := range tally.perQuery {
			res.PerQuery[id] += d
		}
		for id, d := range tally.perQuerySort {
			res.PerQuerySort[id] += d
		}
		res.Scanned.Add(tally.scanned)
		res.Errors = append(res.Errors, tally.errs...)
	}
	if elapsed > 0 {
		res.QPS = float64(res.Queries) / elapsed.Seconds()
	}
	return res
}

// QueryIDs returns the per-query keys of the result in ascending order.
func (r StreamResult) QueryIDs() []int {
	ids := make([]int, 0, len(r.PerQuery))
	for id := range r.PerQuery {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
