package tpch

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkTPCHJoinQuery times the two join-heaviest queries (Q3's
// customer⋈orders⋈lineitem chain, Q9's five-way profit join) at pool
// size 1 vs GOMAXPROCS. scripts/bench.sh records the ratio in
// BENCH_PR3.json; on a 1-core host the speedup is ≈1 by construction.
func BenchmarkTPCHJoinQuery(b *testing.B) {
	db := Generate(GenConfig{SF: 0.01, Seed: 1, Random64: true})
	for _, id := range []int{3, 9} {
		for _, pool := range []struct {
			name    string
			workers int
		}{{"workers=1", 1}, {"workers=max", 0}} {
			b.Run(fmt.Sprintf("Q%d/%s", id, pool.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					RunQueryWorkers(id, db, pool.workers)
				}
			})
		}
	}
}

// BenchmarkStreams measures aggregate stream throughput on the shared
// DB at 1 stream vs GOMAXPROCS streams (cmd/tpchbench -streams is the
// script-facing version of the same measurement).
func BenchmarkStreams(b *testing.B) {
	db := Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true})
	RunStreams(db, StreamConfig{Warmup: true}) // prime caches once
	for _, streams := range []int{1, 0} {
		name := fmt.Sprintf("streams=%d", streams)
		if streams == 0 {
			name = "streams=max"
		}
		b.Run(name, func(b *testing.B) {
			n := streams
			if n == 0 {
				n = runtime.GOMAXPROCS(0)
			}
			for i := 0; i < b.N; i++ {
				res := RunStreams(db, StreamConfig{Streams: n, Workers: 1})
				b.ReportMetric(res.QPS, "qps")
			}
		})
	}
}
