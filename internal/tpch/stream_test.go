package tpch

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"elephants/internal/relal"
)

// goldenSections splits the committed golden snapshot into one
// FormatAnswer-shaped section per query ID, so stream answers can be
// pinned individually.
func goldenSections(t *testing.T) map[int]string {
	t.Helper()
	data, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	sections := map[int]string{}
	for _, chunk := range strings.Split(string(data), "== Q") {
		if chunk == "" {
			continue
		}
		id, err := strconv.Atoi(chunk[:strings.IndexAny(chunk, " ")])
		if err != nil {
			t.Fatalf("malformed golden section header: %q", chunk[:20])
		}
		sections[id] = "== Q" + chunk
	}
	if len(sections) != len(Queries) {
		t.Fatalf("golden file has %d sections, want %d", len(sections), len(Queries))
	}
	return sections
}

// goldenCheck returns a StreamConfig.Check pinning every stream answer
// to its golden section.
func goldenCheck(want map[int]string) func(stream, round, id int, out *relal.Table) error {
	return func(stream, round, id int, out *relal.Table) error {
		if got := FormatAnswer(id, out); got != want[id] {
			return fmt.Errorf("answer drifts from golden snapshot")
		}
		return nil
	}
}

// TestStreamGoldenMatrix is the concurrency acceptance gate: N
// goroutine streams replaying all 22 queries over one shared immutable
// DB must each reproduce the golden snapshot byte-for-byte, across the
// full {workers} x {streams} matrix. Run under -race (the CI streams
// job does) this also proves the shared-table path is data-race free.
func TestStreamGoldenMatrix(t *testing.T) {
	want := goldenSections(t)
	db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true})
	for _, workers := range []int{1, 4} {
		for _, streams := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers=%d_streams=%d", workers, streams), func(t *testing.T) {
				res := RunStreams(db, StreamConfig{
					Streams: streams,
					Workers: workers,
					Check:   goldenCheck(want),
				})
				for _, err := range res.Errors {
					t.Error(err)
				}
				if res.Queries != streams*len(Queries) {
					t.Fatalf("ran %d queries, want %d", res.Queries, streams*len(Queries))
				}
				if res.QPS <= 0 {
					t.Fatalf("non-positive QPS: %+v", res)
				}
			})
		}
	}
}

// TestStreamGoldenOverRCFile runs concurrent streams against
// RCFile-backed sources: decompression, column pruning, and the
// source's atomic stats counter all run from multiple goroutines while
// every answer stays golden.
func TestStreamGoldenOverRCFile(t *testing.T) {
	want := goldenSections(t)
	db := rcfileDB(t, goldenSF, 1024)
	res := RunStreams(db, StreamConfig{
		Streams: 3,
		Workers: 2,
		Queries: []int{1, 3, 6, 9, 13, 18, 21},
		Check:   goldenCheck(want),
	})
	for _, err := range res.Errors {
		t.Error(err)
	}
	if res.Scanned.BytesRead == 0 || res.Scanned.BytesSkipped == 0 {
		t.Fatalf("stream scan accounting not populated: %+v", res.Scanned)
	}
}

// TestStreamRoundsAndWarmup covers the config plumbing: rounds multiply
// the query count, warmup does not change results, and per-query times
// accumulate for every replayed ID.
func TestStreamRoundsAndWarmup(t *testing.T) {
	want := goldenSections(t)
	db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true})
	qids := []int{3, 6, 9}
	res := RunStreams(db, StreamConfig{
		Streams: 2,
		Rounds:  2,
		Workers: 2,
		Queries: qids,
		Warmup:  true,
		Check:   goldenCheck(want),
	})
	for _, err := range res.Errors {
		t.Error(err)
	}
	if res.Queries != 2*2*len(qids) {
		t.Fatalf("ran %d queries, want %d", res.Queries, 2*2*len(qids))
	}
	for _, id := range qids {
		if res.PerQuery[id] <= 0 {
			t.Errorf("Q%d accumulated no wall time", id)
		}
	}
	if got := res.QueryIDs(); len(got) != len(qids) {
		t.Fatalf("QueryIDs = %v, want ids %v", got, qids)
	}
}

// TestStreamDefaults locks the zero-value config: one stream, one
// round, all 22 queries.
func TestStreamDefaults(t *testing.T) {
	db := Generate(GenConfig{SF: 0.001, Seed: 1, Random64: true})
	res := RunStreams(db, StreamConfig{})
	if res.Streams != 1 || res.Rounds != 1 || res.Queries != len(Queries) {
		t.Fatalf("defaults drifted: %+v", res)
	}
	if res.Elapsed <= 0 || res.Elapsed > time.Minute {
		t.Fatalf("implausible elapsed time %v", res.Elapsed)
	}
}
