package tpch

import (
	"os"
	"testing"

	"elephants/internal/relal"
)

// setTopKFusion toggles the fused-operator knob for one test.
func setTopKFusion(t *testing.T, on bool) {
	t.Helper()
	old := TopKFusion
	TopKFusion = on
	t.Cleanup(func() { TopKFusion = old })
}

// TestTopKFusionMatchesSortLimit proves the fused TopK is a pure
// execution strategy: with fusion disabled, the five bounded queries run
// the unfused Sort+Limit pair and the full 22-query snapshot must still
// equal the committed golden file byte-for-byte (which the fused default
// reproduces in TestGoldenAnswers).
func TestTopKFusionMatchesSortLimit(t *testing.T) {
	want, err := os.ReadFile("testdata/tpch_golden.txt")
	if err != nil {
		t.Skip("golden file missing")
	}
	setTopKFusion(t, false)
	diffGolden(t, goldenSnapshot(), string(want))
}

// TestTopKFusionStepLogUnchanged pins the step logs of the five bounded
// queries across the fusion toggle: the Hive/PDW cost replays consume
// the log, so the fused operator must emit the identical Sort+Limit
// step pair (same cardinalities and widths) the unfused path logs.
func TestTopKFusionStepLogUnchanged(t *testing.T) {
	db := Generate(GenConfig{SF: goldenSF, Seed: 1, Random64: true})
	for _, id := range []int{2, 3, 10, 18, 21} {
		setTopKFusion(t, false)
		_, unfused := RunQueryWorkers(id, db, 2)
		setTopKFusion(t, true)
		_, fused := RunQueryWorkers(id, db, 2)
		if len(fused.Steps) != len(unfused.Steps) {
			t.Fatalf("Q%d: fused %d steps, unfused %d", id, len(fused.Steps), len(unfused.Steps))
		}
		limits := 0
		for s := range unfused.Steps {
			if fused.Steps[s] != unfused.Steps[s] {
				t.Fatalf("Q%d step %d drifts under fusion:\n fused   %+v\n unfused %+v",
					id, s, fused.Steps[s], unfused.Steps[s])
			}
			if unfused.Steps[s].Kind == relal.StepLimit {
				limits++
			}
		}
		if limits == 0 {
			t.Fatalf("Q%d logged no limit step", id)
		}
	}
}
