package tpch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"elephants/internal/relal"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	return Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true})
}

func TestRowCounts(t *testing.T) {
	db := testDB(t)
	if db.Region.NumRows() != 5 {
		t.Errorf("region rows = %d, want 5", db.Region.NumRows())
	}
	if db.Nation.NumRows() != 25 {
		t.Errorf("nation rows = %d, want 25", db.Nation.NumRows())
	}
	if got, want := db.Supplier.NumRows(), int(10000*0.005); got != want {
		t.Errorf("supplier rows = %d, want %d", got, want)
	}
	if got, want := db.Orders.NumRows(), int(1500000*0.005); got != want {
		t.Errorf("orders rows = %d, want %d", got, want)
	}
	if db.PartSupp.NumRows() != 4*db.Part.NumRows() {
		t.Errorf("partsupp rows = %d, want 4×part (%d)", db.PartSupp.NumRows(), 4*db.Part.NumRows())
	}
	// Lineitem: 1–7 per order, mean 4.
	ratio := float64(db.Lineitem.NumRows()) / float64(db.Orders.NumRows())
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("lineitems per order = %.2f, want ~4", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{SF: 0.002, Seed: 7, Random64: true})
	b := Generate(GenConfig{SF: 0.002, Seed: 7, Random64: true})
	if a.Lineitem.NumRows() != b.Lineitem.NumRows() {
		t.Fatal("row counts differ across identical seeds")
	}
	ra, rb := relal.RowsOf(a.Lineitem), relal.RowsOf(b.Lineitem)
	for i := 0; i < 10; i++ {
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ra[i][j], rb[i][j])
			}
		}
	}
}

func TestOrderKeySparsity(t *testing.T) {
	// First 8 of every 32 keys used.
	seen := map[int64]bool{}
	for i := int64(0); i < 64; i++ {
		k := OrderKey(i)
		if seen[k] {
			t.Fatalf("duplicate orderkey %d", k)
		}
		seen[k] = true
		if (k-1)%32 >= 8 {
			t.Fatalf("orderkey %d outside first-8-of-32 pattern", k)
		}
	}
}

func TestOrderKeyMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x == y {
			return true
		}
		return (x < y) == (OrderKey(x) < OrderKey(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := testDB(t)
	nCust := int64(db.Customer.NumRows())
	ck := db.Orders.IntCol("o_custkey")
	for i := 0; i < db.Orders.NumRows(); i++ {
		c := ck.Get(i)
		if c < 1 || c > nCust {
			t.Fatalf("o_custkey %d out of range [1,%d]", c, nCust)
		}
	}
	nPart := int64(db.Part.NumRows())
	nSupp := int64(db.Supplier.NumRows())
	pk := db.Lineitem.IntCol("l_partkey")
	sk := db.Lineitem.IntCol("l_suppkey")
	for i := 0; i < db.Lineitem.NumRows(); i++ {
		if p := pk.Get(i); p < 1 || p > nPart {
			t.Fatalf("l_partkey %d out of range", p)
		}
		if s := sk.Get(i); s < 1 || s > nSupp {
			t.Fatalf("l_suppkey %d out of range", s)
		}
	}
}

func TestLineitemOrderKeysMatchOrders(t *testing.T) {
	db := testDB(t)
	orderKeys := map[int64]bool{}
	ok := db.Orders.IntCol("o_orderkey")
	for i := 0; i < db.Orders.NumRows(); i++ {
		orderKeys[ok.Get(i)] = true
	}
	lk := db.Lineitem.IntCol("l_orderkey")
	for i := 0; i < db.Lineitem.NumRows(); i++ {
		if !orderKeys[lk.Get(i)] {
			t.Fatalf("lineitem references missing order %d", lk.Get(i))
		}
	}
}

func TestDatesWellFormed(t *testing.T) {
	db := testDB(t)
	sd := db.Lineitem.StrCol("l_shipdate")
	rd := db.Lineitem.StrCol("l_receiptdate")
	for i := 0; i < 100; i++ {
		ship, receipt := sd.Get(i), rd.Get(i)
		if len(ship) != 10 || ship[4] != '-' || ship[7] != '-' {
			t.Fatalf("malformed date %q", ship)
		}
		if receipt <= ship {
			t.Fatalf("receiptdate %s <= shipdate %s", receipt, ship)
		}
	}
}

func TestDateStringCalendar(t *testing.T) {
	cases := map[int]string{
		0:   "1992-01-01",
		31:  "1992-02-01",
		59:  "1992-02-29", // 1992 is a leap year
		60:  "1992-03-01",
		366: "1993-01-01",
	}
	for off, want := range cases {
		if got := dateString(off); got != want {
			t.Errorf("dateString(%d) = %s, want %s", off, got, want)
		}
	}
}

func TestRandomKeyOverflowBug(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A range that fits in int32: fine.
	for i := 0; i < 100; i++ {
		v := RandomKey(rng, 1, 1000)
		if v < 1 || v > 1000 {
			t.Fatalf("RandomKey in-range case returned %d", v)
		}
	}
	// The 16 TB case: partkey range 200000×16000 = 3.2e9 > MaxInt32.
	sawNegative := false
	for i := 0; i < 1000; i++ {
		if RandomKey(rng, 1, 3_200_000_000) < 1 {
			sawNegative = true
			break
		}
	}
	if !sawNegative {
		t.Error("RandomKey should reproduce the 32-bit overflow (negative keys) at SF 16000 ranges")
	}
	// RANDOM64 fix: always valid.
	for i := 0; i < 1000; i++ {
		v := RandomKey64(rng, 1, 3_200_000_000)
		if v < 1 || v > 3_200_000_000 {
			t.Fatalf("RandomKey64 returned %d", v)
		}
	}
}

func TestTextBytesScalesLinearly(t *testing.T) {
	if TextBytes("lineitem", 2) != 2*TextBytes("lineitem", 1) {
		t.Error("TextBytes must scale linearly with SF")
	}
	// Lineitem dominates: at SF 1 roughly 6M rows × ~128 B ≈ 770 MB.
	got := TextBytes("lineitem", 1)
	if got < 500e6 || got > 1000e6 {
		t.Errorf("lineitem text bytes at SF 1 = %d, want ~768 MB", got)
	}
}

func TestAllQueriesRun(t *testing.T) {
	db := testDB(t)
	for _, q := range Queries {
		out, log := RunQuery(q.ID, db)
		if out == nil {
			t.Fatalf("Q%d returned nil", q.ID)
		}
		if len(log.Steps) == 0 {
			t.Errorf("Q%d produced no step log", q.ID)
		}
		// Every query except some selective ones returns rows at this SF.
		switch q.ID {
		case 18, 20: // sum(qty)>300 and CANADA-forest surplus are rare at tiny SF
		default:
			if out.NumRows() == 0 {
				t.Errorf("Q%d returned no rows", q.ID)
			}
		}
	}
}

func TestQ1Aggregates(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(1, db)
	// Validate against a direct computation over the columns.
	type acc struct {
		qty, price float64
		n          int64
	}
	want := map[string]*acc{}
	sd := db.Lineitem.StrCol("l_shipdate")
	rf := db.Lineitem.StrCol("l_returnflag")
	ls := db.Lineitem.StrCol("l_linestatus")
	qty := db.Lineitem.FloatCol("l_quantity")
	price := db.Lineitem.FloatCol("l_extendedprice")
	for i := 0; i < db.Lineitem.NumRows(); i++ {
		if sd.Get(i) > "1998-09-02" {
			continue
		}
		k := rf.Get(i) + "|" + ls.Get(i)
		a := want[k]
		if a == nil {
			a = &acc{}
			want[k] = a
		}
		a.qty += qty.Get(i)
		a.price += price.Get(i)
		a.n++
	}
	if out.NumRows() != len(want) {
		t.Fatalf("Q1 groups = %d, want %d", out.NumRows(), len(want))
	}
	orf := out.StrCol("l_returnflag")
	ols := out.StrCol("l_linestatus")
	osq := out.FloatCol("sum_qty")
	oco := out.IntCol("count_order")
	for i := 0; i < out.NumRows(); i++ {
		k := orf.Get(i) + "|" + ols.Get(i)
		a := want[k]
		if a == nil {
			t.Fatalf("unexpected group %s", k)
		}
		if got := osq.Get(i); !close(got, a.qty) {
			t.Errorf("group %s sum_qty = %g, want %g", k, got, a.qty)
		}
		if got := oco.Get(i); got != a.n {
			t.Errorf("group %s count = %d, want %d", k, got, a.n)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d/scale < 1e-9
}

func TestQ6DirectComputation(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(6, db)
	var want float64
	sd := db.Lineitem.StrCol("l_shipdate")
	disc := db.Lineitem.FloatCol("l_discount")
	qty := db.Lineitem.FloatCol("l_quantity")
	price := db.Lineitem.FloatCol("l_extendedprice")
	for i := 0; i < db.Lineitem.NumRows(); i++ {
		d := sd.Get(i)
		dc := disc.Get(i)
		if d >= "1994-01-01" && d < "1995-01-01" &&
			dc >= 0.05-1e-9 && dc <= 0.07+1e-9 &&
			qty.Get(i) < 24 {
			want += price.Get(i) * dc
		}
	}
	if out.NumRows() != 1 {
		t.Fatalf("Q6 rows = %d, want 1", out.NumRows())
	}
	if got := out.FloatCol("revenue").Get(0); !close(got, want) {
		t.Errorf("Q6 revenue = %g, want %g", got, want)
	}
}

func TestQ5RevenuePositiveAndSorted(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(5, db)
	rev := out.FloatCol("revenue")
	last := 1e308
	for i := 0; i < out.NumRows(); i++ {
		v := rev.Get(i)
		if v <= 0 {
			t.Errorf("Q5 revenue %g <= 0", v)
		}
		if v > last {
			t.Error("Q5 not sorted descending by revenue")
		}
		last = v
	}
	// All nations must be in ASIA.
	nn := out.StrCol("n_name")
	asia := map[string]bool{}
	for _, n := range nations {
		if n.region == 2 {
			asia[n.name] = true
		}
	}
	for i := 0; i < out.NumRows(); i++ {
		if !asia[nn.Get(i)] {
			t.Errorf("Q5 returned non-ASIA nation %s", nn.Get(i))
		}
	}
}

func TestQ13IncludesZeroOrderCustomers(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(13, db)
	var totalCust int64
	cd := out.IntCol("custdist")
	for i := 0; i < out.NumRows(); i++ {
		totalCust += cd.Get(i)
	}
	if totalCust != int64(db.Customer.NumRows()) {
		t.Errorf("Q13 customer total = %d, want %d (every customer counted once)", totalCust, db.Customer.NumRows())
	}
}

func TestQ22ExcludesCustomersWithOrders(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(22, db)
	if out.NumRows() == 0 {
		t.Fatal("Q22 returned no country codes")
	}
	nc := out.IntCol("numcust")
	var total int64
	for i := 0; i < out.NumRows(); i++ {
		total += nc.Get(i)
	}
	if total <= 0 || total >= int64(db.Customer.NumRows()) {
		t.Errorf("Q22 numcust total = %d, implausible", total)
	}
}

func TestQ2MinCostProperty(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(2, db)
	if out.NumRows() == 0 {
		t.Skip("no size-15 BRASS parts at this SF")
	}
	// acctbal sorted descending.
	ab := out.FloatCol("s_acctbal")
	last := 1e308
	for i := 0; i < out.NumRows(); i++ {
		v := ab.Get(i)
		if v > last+1e-9 {
			t.Error("Q2 not sorted by acctbal desc")
		}
		last = v
	}
}

func TestQ19MatchesDirectFilter(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(19, db)
	if out.NumRows() != 1 {
		t.Fatalf("Q19 rows = %d", out.NumRows())
	}
	if out.FloatCol("revenue").Get(0) < 0 {
		t.Error("Q19 revenue negative")
	}
}

func TestStepLogShapes(t *testing.T) {
	db := testDB(t)
	_, log := RunQuery(5, db)
	var scans, joins int
	for _, s := range log.Steps {
		switch s.Kind {
		case relal.StepScan:
			scans++
		case relal.StepJoin:
			joins++
		}
	}
	if scans != 6 {
		t.Errorf("Q5 scans = %d, want 6 (six base tables)", scans)
	}
	if joins < 5 {
		t.Errorf("Q5 joins = %d, want >= 5", joins)
	}
}

func TestCommentMarkers(t *testing.T) {
	db := testDB(t)
	// Some suppliers must carry the Q16 complaints marker at SF where
	// supplier count is small; regenerate at a larger SF if none.
	dbBig := Generate(GenConfig{SF: 0.02, Seed: 3, Random64: true})
	sc := dbBig.Supplier.StrCol("s_comment")
	found := false
	for i := 0; i < dbBig.Supplier.NumRows(); i++ {
		c := sc.Get(i)
		if j := strings.Index(c, "Customer"); j >= 0 && strings.Contains(c[j:], "Complaints") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no supplier complaints markers generated")
	}
	_ = db
}
