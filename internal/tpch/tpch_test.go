package tpch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"elephants/internal/relal"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	return Generate(GenConfig{SF: 0.005, Seed: 1, Random64: true})
}

func TestRowCounts(t *testing.T) {
	db := testDB(t)
	if db.Region.NumRows() != 5 {
		t.Errorf("region rows = %d, want 5", db.Region.NumRows())
	}
	if db.Nation.NumRows() != 25 {
		t.Errorf("nation rows = %d, want 25", db.Nation.NumRows())
	}
	if got, want := db.Supplier.NumRows(), int(10000*0.005); got != want {
		t.Errorf("supplier rows = %d, want %d", got, want)
	}
	if got, want := db.Orders.NumRows(), int(1500000*0.005); got != want {
		t.Errorf("orders rows = %d, want %d", got, want)
	}
	if db.PartSupp.NumRows() != 4*db.Part.NumRows() {
		t.Errorf("partsupp rows = %d, want 4×part (%d)", db.PartSupp.NumRows(), 4*db.Part.NumRows())
	}
	// Lineitem: 1–7 per order, mean 4.
	ratio := float64(db.Lineitem.NumRows()) / float64(db.Orders.NumRows())
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("lineitems per order = %.2f, want ~4", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{SF: 0.002, Seed: 7, Random64: true})
	b := Generate(GenConfig{SF: 0.002, Seed: 7, Random64: true})
	if a.Lineitem.NumRows() != b.Lineitem.NumRows() {
		t.Fatal("row counts differ across identical seeds")
	}
	for i := 0; i < 10; i++ {
		ra, rb := a.Lineitem.Rows[i], b.Lineitem.Rows[i]
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ra[j], rb[j])
			}
		}
	}
}

func TestOrderKeySparsity(t *testing.T) {
	// First 8 of every 32 keys used.
	seen := map[int64]bool{}
	for i := int64(0); i < 64; i++ {
		k := OrderKey(i)
		if seen[k] {
			t.Fatalf("duplicate orderkey %d", k)
		}
		seen[k] = true
		if (k-1)%32 >= 8 {
			t.Fatalf("orderkey %d outside first-8-of-32 pattern", k)
		}
	}
}

func TestOrderKeyMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x == y {
			return true
		}
		return (x < y) == (OrderKey(x) < OrderKey(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := testDB(t)
	nCust := int64(db.Customer.NumRows())
	ck := db.Orders.Schema.Col("o_custkey")
	for _, r := range db.Orders.Rows {
		c := relal.I(r[ck])
		if c < 1 || c > nCust {
			t.Fatalf("o_custkey %d out of range [1,%d]", c, nCust)
		}
	}
	nPart := int64(db.Part.NumRows())
	nSupp := int64(db.Supplier.NumRows())
	pk := db.Lineitem.Schema.Col("l_partkey")
	sk := db.Lineitem.Schema.Col("l_suppkey")
	for _, r := range db.Lineitem.Rows {
		if p := relal.I(r[pk]); p < 1 || p > nPart {
			t.Fatalf("l_partkey %d out of range", p)
		}
		if s := relal.I(r[sk]); s < 1 || s > nSupp {
			t.Fatalf("l_suppkey %d out of range", s)
		}
	}
}

func TestLineitemOrderKeysMatchOrders(t *testing.T) {
	db := testDB(t)
	orderKeys := map[int64]bool{}
	ok := db.Orders.Schema.Col("o_orderkey")
	for _, r := range db.Orders.Rows {
		orderKeys[relal.I(r[ok])] = true
	}
	lk := db.Lineitem.Schema.Col("l_orderkey")
	for _, r := range db.Lineitem.Rows {
		if !orderKeys[relal.I(r[lk])] {
			t.Fatalf("lineitem references missing order %d", relal.I(r[lk]))
		}
	}
}

func TestDatesWellFormed(t *testing.T) {
	db := testDB(t)
	s := db.Lineitem.Schema
	sd, cd, rd := s.Col("l_shipdate"), s.Col("l_commitdate"), s.Col("l_receiptdate")
	for _, r := range db.Lineitem.Rows[:100] {
		ship, _, receipt := relal.S(r[sd]), relal.S(r[cd]), relal.S(r[rd])
		if len(ship) != 10 || ship[4] != '-' || ship[7] != '-' {
			t.Fatalf("malformed date %q", ship)
		}
		if receipt <= ship {
			t.Fatalf("receiptdate %s <= shipdate %s", receipt, ship)
		}
	}
}

func TestDateStringCalendar(t *testing.T) {
	cases := map[int]string{
		0:   "1992-01-01",
		31:  "1992-02-01",
		59:  "1992-02-29", // 1992 is a leap year
		60:  "1992-03-01",
		366: "1993-01-01",
	}
	for off, want := range cases {
		if got := dateString(off); got != want {
			t.Errorf("dateString(%d) = %s, want %s", off, got, want)
		}
	}
}

func TestRandomKeyOverflowBug(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A range that fits in int32: fine.
	for i := 0; i < 100; i++ {
		v := RandomKey(rng, 1, 1000)
		if v < 1 || v > 1000 {
			t.Fatalf("RandomKey in-range case returned %d", v)
		}
	}
	// The 16 TB case: partkey range 200000×16000 = 3.2e9 > MaxInt32.
	sawNegative := false
	for i := 0; i < 1000; i++ {
		if RandomKey(rng, 1, 3_200_000_000) < 1 {
			sawNegative = true
			break
		}
	}
	if !sawNegative {
		t.Error("RandomKey should reproduce the 32-bit overflow (negative keys) at SF 16000 ranges")
	}
	// RANDOM64 fix: always valid.
	for i := 0; i < 1000; i++ {
		v := RandomKey64(rng, 1, 3_200_000_000)
		if v < 1 || v > 3_200_000_000 {
			t.Fatalf("RandomKey64 returned %d", v)
		}
	}
}

func TestTextBytesScalesLinearly(t *testing.T) {
	if TextBytes("lineitem", 2) != 2*TextBytes("lineitem", 1) {
		t.Error("TextBytes must scale linearly with SF")
	}
	// Lineitem dominates: at SF 1 roughly 6M rows × ~128 B ≈ 770 MB.
	got := TextBytes("lineitem", 1)
	if got < 500e6 || got > 1000e6 {
		t.Errorf("lineitem text bytes at SF 1 = %d, want ~768 MB", got)
	}
}

func TestAllQueriesRun(t *testing.T) {
	db := testDB(t)
	for _, q := range Queries {
		out, log := RunQuery(q.ID, db)
		if out == nil {
			t.Fatalf("Q%d returned nil", q.ID)
		}
		if len(log.Steps) == 0 {
			t.Errorf("Q%d produced no step log", q.ID)
		}
		// Every query except some selective ones returns rows at this SF.
		switch q.ID {
		case 18, 20: // sum(qty)>300 and CANADA-forest surplus are rare at tiny SF
		default:
			if out.NumRows() == 0 {
				t.Errorf("Q%d returned no rows", q.ID)
			}
		}
	}
}

func TestQ1Aggregates(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(1, db)
	// Validate against a direct computation.
	type acc struct {
		qty, price float64
		n          int64
	}
	want := map[string]*acc{}
	s := db.Lineitem.Schema
	for _, r := range db.Lineitem.Rows {
		if relal.S(r[s.Col("l_shipdate")]) > "1998-09-02" {
			continue
		}
		k := relal.S(r[s.Col("l_returnflag")]) + "|" + relal.S(r[s.Col("l_linestatus")])
		a := want[k]
		if a == nil {
			a = &acc{}
			want[k] = a
		}
		a.qty += relal.F(r[s.Col("l_quantity")])
		a.price += relal.F(r[s.Col("l_extendedprice")])
		a.n++
	}
	if out.NumRows() != len(want) {
		t.Fatalf("Q1 groups = %d, want %d", out.NumRows(), len(want))
	}
	os := out.Schema
	for _, r := range out.Rows {
		k := relal.S(r[os.Col("l_returnflag")]) + "|" + relal.S(r[os.Col("l_linestatus")])
		a := want[k]
		if a == nil {
			t.Fatalf("unexpected group %s", k)
		}
		if got := relal.F(r[os.Col("sum_qty")]); !close(got, a.qty) {
			t.Errorf("group %s sum_qty = %g, want %g", k, got, a.qty)
		}
		if got := relal.I(r[os.Col("count_order")]); got != a.n {
			t.Errorf("group %s count = %d, want %d", k, got, a.n)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d/scale < 1e-9
}

func TestQ6DirectComputation(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(6, db)
	var want float64
	s := db.Lineitem.Schema
	for _, r := range db.Lineitem.Rows {
		d := relal.S(r[s.Col("l_shipdate")])
		disc := relal.F(r[s.Col("l_discount")])
		if d >= "1994-01-01" && d < "1995-01-01" &&
			disc >= 0.05-1e-9 && disc <= 0.07+1e-9 &&
			relal.F(r[s.Col("l_quantity")]) < 24 {
			want += relal.F(r[s.Col("l_extendedprice")]) * disc
		}
	}
	if out.NumRows() != 1 {
		t.Fatalf("Q6 rows = %d, want 1", out.NumRows())
	}
	if got := relal.F(out.Rows[0][0]); !close(got, want) {
		t.Errorf("Q6 revenue = %g, want %g", got, want)
	}
}

func TestQ5RevenuePositiveAndSorted(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(5, db)
	rev := out.Schema.Col("revenue")
	last := 1e308
	for _, r := range out.Rows {
		v := relal.F(r[rev])
		if v <= 0 {
			t.Errorf("Q5 revenue %g <= 0", v)
		}
		if v > last {
			t.Error("Q5 not sorted descending by revenue")
		}
		last = v
	}
	// All nations must be in ASIA.
	nn := out.Schema.Col("n_name")
	asia := map[string]bool{}
	for _, n := range nations {
		if n.region == 2 {
			asia[n.name] = true
		}
	}
	for _, r := range out.Rows {
		if !asia[relal.S(r[nn])] {
			t.Errorf("Q5 returned non-ASIA nation %s", relal.S(r[nn]))
		}
	}
}

func TestQ13IncludesZeroOrderCustomers(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(13, db)
	var totalCust int64
	cd := out.Schema.Col("custdist")
	for _, r := range out.Rows {
		totalCust += relal.I(r[cd])
	}
	if totalCust != int64(db.Customer.NumRows()) {
		t.Errorf("Q13 customer total = %d, want %d (every customer counted once)", totalCust, db.Customer.NumRows())
	}
}

func TestQ22ExcludesCustomersWithOrders(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(22, db)
	if out.NumRows() == 0 {
		t.Fatal("Q22 returned no country codes")
	}
	nc := out.Schema.Col("numcust")
	var total int64
	for _, r := range out.Rows {
		total += relal.I(r[nc])
	}
	if total <= 0 || total >= int64(db.Customer.NumRows()) {
		t.Errorf("Q22 numcust total = %d, implausible", total)
	}
}

func TestQ2MinCostProperty(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(2, db)
	if out.NumRows() == 0 {
		t.Skip("no size-15 BRASS parts at this SF")
	}
	// acctbal sorted descending.
	ab := out.Schema.Col("s_acctbal")
	last := 1e308
	for _, r := range out.Rows {
		v := relal.F(r[ab])
		if v > last+1e-9 {
			t.Error("Q2 not sorted by acctbal desc")
		}
		last = v
	}
}

func TestQ19MatchesDirectFilter(t *testing.T) {
	db := testDB(t)
	out, _ := RunQuery(19, db)
	if out.NumRows() != 1 {
		t.Fatalf("Q19 rows = %d", out.NumRows())
	}
	if relal.F(out.Rows[0][0]) < 0 {
		t.Error("Q19 revenue negative")
	}
}

func TestStepLogShapes(t *testing.T) {
	db := testDB(t)
	_, log := RunQuery(5, db)
	var scans, joins int
	for _, s := range log.Steps {
		switch s.Kind {
		case relal.StepScan:
			scans++
		case relal.StepJoin:
			joins++
		}
	}
	if scans != 6 {
		t.Errorf("Q5 scans = %d, want 6 (six base tables)", scans)
	}
	if joins < 5 {
		t.Errorf("Q5 joins = %d, want >= 5", joins)
	}
}

func TestCommentMarkers(t *testing.T) {
	db := testDB(t)
	// Some suppliers must carry the Q16 complaints marker at SF where
	// supplier count is small; regenerate at a larger SF if none.
	dbBig := Generate(GenConfig{SF: 0.02, Seed: 3, Random64: true})
	found := false
	sc := dbBig.Supplier.Schema.Col("s_comment")
	for _, r := range dbBig.Supplier.Rows {
		c := relal.S(r[sc])
		if i := strings.Index(c, "Customer"); i >= 0 && strings.Contains(c[i:], "Complaints") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no supplier complaints markers generated")
	}
	_ = db
}
