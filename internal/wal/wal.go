// Package wal models write-ahead logging with group commit, and the
// periodic checkpointing of dirty buffer-pool pages. In the paper's YCSB
// runs the SQL Server systems pay both costs (full ACID durability) while
// MongoDB was run with journaling disabled; checkpoint intervals are what
// cause SQL-CS's throughput dips in Workload B ("during the checkpointing
// interval the throughput decreases to 7,000-8,000 ops/sec").
package wal

import (
	"sync/atomic"

	"elephants/internal/cluster"
	"elephants/internal/sim"
)

// Log is a write-ahead log on a dedicated disk. Commits are group
// committed: appends arriving within the same flush window ride one
// physical flush, which is how a 10k RPM log disk sustains thousands of
// commits per second.
type Log struct {
	s     *sim.Sim
	disk  *cluster.Disk
	group sim.Duration // group-commit window

	mu       *sim.Resource
	flushEnd sim.Time // virtual time the in-flight/most recent flush completes
	// Counters are atomic: sim processes are serialized by the kernel,
	// but Stats is read from host goroutines (harness reporting threads)
	// while the simulation runs.
	appends atomic.Int64
	flushes atomic.Int64
}

// DefaultGroupWindow is the default group-commit window.
const DefaultGroupWindow = 500 * sim.Microsecond

// NewLog returns a WAL writing to disk with the given group-commit
// window (0 means DefaultGroupWindow).
func NewLog(s *sim.Sim, disk *cluster.Disk, group sim.Duration) *Log {
	if group <= 0 {
		group = DefaultGroupWindow
	}
	return &Log{s: s, disk: disk, group: group, mu: s.NewMutex("wal")}
}

// Append durably appends a commit record of the given size and blocks
// until it is on disk. Concurrent appends within one window share a
// flush.
func (l *Log) Append(p *sim.Proc, bytes int64) {
	l.mu.Acquire(p)
	now := p.Now()
	// Strict >: an append landing exactly at flushEnd sees a finished
	// flush and must start a new window, not ride the completed one.
	if l.flushEnd > now {
		// Ride the in-flight flush: wait until it completes. The append
		// is counted before releasing the mutex so accounting never
		// trails the flush it rode.
		target := l.flushEnd
		l.appends.Add(1)
		l.mu.Release()
		p.Sleep(sim.Duration(target - now))
		return
	}
	// Start a new flush: window to batch plus the physical write.
	flushDur := l.group + l.disk.SeqTime(bytes)
	l.flushEnd = now + sim.Time(flushDur)
	l.flushes.Add(1)
	l.appends.Add(1)
	l.mu.Release()
	p.Sleep(flushDur)
}

// Stats reports cumulative appended commits and physical flushes. Safe
// from any goroutine, including while the simulation is running.
func (l *Log) Stats() (appends, flushes int64) { return l.appends.Load(), l.flushes.Load() }

// Checkpointer periodically flushes dirty pages to data disks. Flush is
// provided by the engine; it must charge the write I/O and return the
// number of pages written.
type Checkpointer struct {
	s        *sim.Sim
	interval sim.Duration
	flush    func(p *sim.Proc) int
	// rounds/pages are read by Stats and stop is written by Stop from
	// host goroutines while the checkpoint process runs inside the
	// simulation, so all three are atomic.
	rounds atomic.Int64
	pages  atomic.Int64
	stop   atomic.Bool
}

// NewCheckpointer returns a checkpointer that invokes flush every
// interval of virtual time once started.
func NewCheckpointer(s *sim.Sim, interval sim.Duration, flush func(p *sim.Proc) int) *Checkpointer {
	if interval <= 0 {
		interval = 60 * sim.Second
	}
	return &Checkpointer{s: s, interval: interval, flush: flush}
}

// Start launches the background checkpoint process. It runs until Stop
// is called (checked at each interval).
func (c *Checkpointer) Start() {
	c.s.Spawn("checkpointer", func(p *sim.Proc) {
		for {
			p.Sleep(c.interval)
			if c.stop.Load() {
				return
			}
			n := c.flush(p)
			c.rounds.Add(1)
			c.pages.Add(int64(n))
		}
	})
}

// Stop requests the checkpoint process exit at its next wake-up. Safe
// from any goroutine.
func (c *Checkpointer) Stop() { c.stop.Store(true) }

// Stats reports completed checkpoint rounds and total pages written.
// Safe from any goroutine.
func (c *Checkpointer) Stats() (rounds, pages int64) { return c.rounds.Load(), c.pages.Load() }
