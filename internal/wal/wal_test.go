package wal

import (
	"testing"

	"elephants/internal/cluster"
	"elephants/internal/sim"
)

func testDisk(s *sim.Sim) *cluster.Disk {
	cl := cluster.New(s, cluster.Config{Nodes: 1})
	return cl.Nodes[0].Disks[0]
}

func TestAppendBlocksForFlush(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), sim.Millisecond)
	var elapsed sim.Duration
	s.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		l.Append(p, 100)
		elapsed = sim.Duration(p.Now() - start)
	})
	s.Run()
	if elapsed < sim.Millisecond {
		t.Errorf("append took %v, want >= group window 1ms", elapsed)
	}
}

func TestGroupCommitShares(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), sim.Millisecond)
	for i := 0; i < 10; i++ {
		s.Spawn("c", func(p *sim.Proc) { l.Append(p, 100) })
	}
	s.Run()
	appends, flushes := l.Stats()
	if appends != 10 {
		t.Errorf("appends = %d, want 10", appends)
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want 1 (group commit)", flushes)
	}
}

func TestSeparatedAppendsFlushSeparately(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), sim.Millisecond)
	s.Spawn("c", func(p *sim.Proc) {
		l.Append(p, 100)
		p.Sleep(10 * sim.Millisecond)
		l.Append(p, 100)
	})
	s.Run()
	if _, flushes := l.Stats(); flushes != 2 {
		t.Errorf("flushes = %d, want 2", flushes)
	}
}

func TestCheckpointerRuns(t *testing.T) {
	s := sim.New()
	var calls int
	c := NewCheckpointer(s, sim.Second, func(p *sim.Proc) int {
		calls++
		if calls >= 3 {
			// Stop after the third round so the sim drains.
			return 7
		}
		return 7
	})
	s.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(3500 * sim.Millisecond)
		c.Stop()
	})
	c.Start()
	s.Run()
	rounds, pages := c.Stats()
	if rounds != 3 {
		t.Errorf("rounds = %d, want 3", rounds)
	}
	if pages != 21 {
		t.Errorf("pages = %d, want 21", pages)
	}
}

func TestCheckpointerStopBeforeFirst(t *testing.T) {
	s := sim.New()
	c := NewCheckpointer(s, sim.Second, func(p *sim.Proc) int { return 1 })
	c.Start()
	c.Stop()
	s.Run()
	if rounds, _ := c.Stats(); rounds != 0 {
		t.Errorf("rounds = %d, want 0", rounds)
	}
}

func TestDefaultGroupWindowApplied(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), 0)
	if l.group != DefaultGroupWindow {
		t.Errorf("group = %v, want default", l.group)
	}
}
