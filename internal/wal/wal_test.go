package wal

import (
	"runtime"
	"testing"

	"elephants/internal/cluster"
	"elephants/internal/sim"
)

func testDisk(s *sim.Sim) *cluster.Disk {
	cl := cluster.New(s, cluster.Config{Nodes: 1})
	return cl.Nodes[0].Disks[0]
}

func TestAppendBlocksForFlush(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), sim.Millisecond)
	var elapsed sim.Duration
	s.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		l.Append(p, 100)
		elapsed = sim.Duration(p.Now() - start)
	})
	s.Run()
	if elapsed < sim.Millisecond {
		t.Errorf("append took %v, want >= group window 1ms", elapsed)
	}
}

func TestGroupCommitShares(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), sim.Millisecond)
	for i := 0; i < 10; i++ {
		s.Spawn("c", func(p *sim.Proc) { l.Append(p, 100) })
	}
	s.Run()
	appends, flushes := l.Stats()
	if appends != 10 {
		t.Errorf("appends = %d, want 10", appends)
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want 1 (group commit)", flushes)
	}
}

func TestSeparatedAppendsFlushSeparately(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), sim.Millisecond)
	s.Spawn("c", func(p *sim.Proc) {
		l.Append(p, 100)
		p.Sleep(10 * sim.Millisecond)
		l.Append(p, 100)
	})
	s.Run()
	if _, flushes := l.Stats(); flushes != 2 {
		t.Errorf("flushes = %d, want 2", flushes)
	}
}

func TestCheckpointerRuns(t *testing.T) {
	s := sim.New()
	var calls int
	c := NewCheckpointer(s, sim.Second, func(p *sim.Proc) int {
		calls++
		if calls >= 3 {
			// Stop after the third round so the sim drains.
			return 7
		}
		return 7
	})
	s.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(3500 * sim.Millisecond)
		c.Stop()
	})
	c.Start()
	s.Run()
	rounds, pages := c.Stats()
	if rounds != 3 {
		t.Errorf("rounds = %d, want 3", rounds)
	}
	if pages != 21 {
		t.Errorf("pages = %d, want 21", pages)
	}
}

func TestCheckpointerStopBeforeFirst(t *testing.T) {
	s := sim.New()
	c := NewCheckpointer(s, sim.Second, func(p *sim.Proc) int { return 1 })
	c.Start()
	c.Stop()
	s.Run()
	if rounds, _ := c.Stats(); rounds != 0 {
		t.Errorf("rounds = %d, want 0", rounds)
	}
}

// TestWalAppendAtExactFlushEnd pins the window boundary: the leader of a
// flush wakes exactly at flushEnd, so an append issued at that instant
// sees a finished flush and must start a new window rather than ride
// the completed one.
func TestWalAppendAtExactFlushEnd(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), sim.Millisecond)
	s.Spawn("c", func(p *sim.Proc) {
		l.Append(p, 100) // leader: returns at exactly flushEnd
		l.Append(p, 100) // lands at flushEnd: must open a new window
	})
	s.Run()
	appends, flushes := l.Stats()
	if appends != 2 {
		t.Errorf("appends = %d, want 2", appends)
	}
	if flushes != 2 {
		t.Errorf("flushes = %d, want 2 (append at flushEnd starts a new flush)", flushes)
	}
}

// TestWalStatsDuringRun reads Stats from the host while the simulation
// runs in another goroutine — the race the unsynchronized counters had
// (run under -race).
func TestWalStatsDuringRun(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), 100*sim.Microsecond)
	for i := 0; i < 8; i++ {
		s.Spawn("c", func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				l.Append(p, 100)
				p.Sleep(sim.Millisecond)
			}
		})
	}
	done := make(chan struct{})
	go func() {
		s.Run()
		close(done)
	}()
	var lastAppends int64
	for {
		select {
		case <-done:
			if appends, _ := l.Stats(); appends != 400 {
				t.Errorf("appends = %d, want 400", appends)
			}
			return
		default:
			appends, flushes := l.Stats()
			if appends < lastAppends {
				t.Errorf("appends went backwards: %d -> %d", lastAppends, appends)
			}
			lastAppends = appends
			_ = flushes
		}
	}
}

// TestWalCheckpointerStopDuringRun stops the checkpointer (and polls its
// Stats) from the host while the spawned process is provably mid-run —
// the race the plain stop bool had (run under -race). The flush
// callback handshakes with the host through an unbuffered channel, so
// every Stats/Stop call below overlaps a live simulation.
func TestWalCheckpointerStopDuringRun(t *testing.T) {
	s := sim.New()
	gate := make(chan struct{})
	c := NewCheckpointer(s, sim.Millisecond, func(p *sim.Proc) int {
		<-gate
		return 3
	})
	c.Start()
	done := make(chan struct{})
	go func() {
		s.RunUntil(sim.Time(10 * sim.Second))
		close(done)
	}()
	for i := int64(1); i <= 5; i++ {
		gate <- struct{}{} // sim-side flush consumed it: the sim is live
		for {
			if rounds, _ := c.Stats(); rounds >= i {
				break
			}
			runtime.Gosched()
		}
	}
	c.Stop()    // races with the running checkpoint process
	close(gate) // let any rounds already past the stop check drain free
	<-done
	rounds, pages := c.Stats()
	if rounds < 5 {
		t.Errorf("rounds = %d, want >= 5", rounds)
	}
	if pages != 3*rounds {
		t.Errorf("pages = %d, want %d", pages, 3*rounds)
	}
}

func TestDefaultGroupWindowApplied(t *testing.T) {
	s := sim.New()
	l := NewLog(s, testDisk(s), 0)
	if l.group != DefaultGroupWindow {
		t.Errorf("group = %v, want default", l.group)
	}
}
