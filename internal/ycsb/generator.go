// Package ycsb implements the Yahoo! Cloud Serving Benchmark core used
// in §3.4 of the paper: the five standard workloads (A–E), the request
// distributions (uniform, zipfian, scrambled zipfian, latest), the
// record layout (24-byte zero-padded integer keys, ten 100-byte string
// fields), closed-loop clients with target-throughput throttling, and
// the paper's measurement protocol (averages over the final window of
// the run, reported with standard error across 10-second windows).
package ycsb

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// KeyLen is the paper's record key length: the string form of an integer
// zero-padded to 24 bytes.
const KeyLen = 24

// FieldCount and FieldLen give the paper's record shape: ten 100-byte
// string fields (1,024-byte records including the key).
const (
	FieldCount = 10
	FieldLen   = 100
)

// Key formats a record number as the paper's 24-byte key.
func Key(n int64) string { return fmt.Sprintf("%024d", n) }

// MakeFields builds a deterministic set of field values for record n.
func MakeFields(rng *rand.Rand) []string {
	out := make([]string, FieldCount)
	buf := make([]byte, FieldLen)
	for i := range out {
		for j := range buf {
			buf[j] = byte('a' + rng.Intn(26))
		}
		out[i] = string(buf)
	}
	return out
}

// IntGenerator produces record indices under some request distribution.
type IntGenerator interface {
	// Next returns the next record index in [0, n) for the generator's
	// current population.
	Next(rng *rand.Rand) int64
}

// Uniform selects uniformly from [0, n).
type Uniform struct{ N int64 }

// Next implements IntGenerator.
func (u Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.N) }

// Zipfian implements the Gray et al. zipfian generator used by YCSB,
// with incremental zeta maintenance so the population can grow.
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	zeta2 float64
	eta   float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian returns a zipfian generator over [0, n).
func NewZipfian(n int64, theta float64) *Zipfian {
	if theta <= 0 {
		theta = ZipfianConstant
	}
	z := &Zipfian{theta: theta, alpha: 1 / (1 - theta)}
	z.zeta2 = zetaRange(0, 2, theta)
	z.Grow(n)
	return z
}

// zetaRange computes sum_{i=from+1..to} 1/i^theta.
func zetaRange(from, to int64, theta float64) float64 {
	var sum float64
	for i := from + 1; i <= to; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Grow extends the population to n (no-op if n <= current), updating
// zeta incrementally.
func (z *Zipfian) Grow(n int64) {
	if n <= z.n {
		return
	}
	z.zetan += zetaRange(z.n, n, z.theta)
	z.n = n
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// N returns the current population size.
func (z *Zipfian) N() int64 { return z.n }

// Next implements IntGenerator: items near 0 are most popular.
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// ScrambledZipfian spreads zipfian popularity across the key space by
// hashing, as YCSB does, so the hot set is not a contiguous key range.
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian returns a scrambled zipfian over [0, n).
func NewScrambledZipfian(n int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n, ZipfianConstant), n: n}
}

// Next implements IntGenerator.
func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	v := s.z.Next(rng)
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(v) >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() % uint64(s.n))
}

// Latest skews toward recently inserted records ("read latest"), the
// Workload D distribution. The caller advances the population with Grow
// as appends happen.
type Latest struct {
	z *Zipfian
}

// NewLatest returns a latest-skewed generator over an initial population
// of n records.
func NewLatest(n int64) *Latest {
	return &Latest{z: NewZipfian(n, ZipfianConstant)}
}

// Grow extends the population after an insert.
func (l *Latest) Grow(n int64) { l.z.Grow(n) }

// Next implements IntGenerator: the most recent record is most popular.
func (l *Latest) Next(rng *rand.Rand) int64 {
	n := l.z.N()
	v := n - 1 - l.z.Next(rng)
	if v < 0 {
		v = 0
	}
	return v
}

// UniformRange selects uniformly from [lo, hi] inclusive; used for scan
// lengths.
type UniformRange struct{ Lo, Hi int }

// Next returns the next value.
func (u UniformRange) Next(rng *rand.Rand) int {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Intn(u.Hi-u.Lo+1)
}
