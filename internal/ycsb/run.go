package ycsb

import (
	"errors"
	"math/rand"

	"elephants/internal/metrics"
	"elephants/internal/shard"
	"elephants/internal/sim"
)

// RunConfig parameterizes one benchmark point: one system, one workload,
// one target throughput.
type RunConfig struct {
	Workload Workload
	// Records is the number of records already loaded (keys 0..Records-1).
	Records int64
	// Clients is the number of closed-loop client threads (the paper
	// runs 800 across 8 client nodes; scale down with the dataset).
	Clients int
	// TargetOps is the aggregate target throughput in ops/sec; 0 means
	// unthrottled.
	TargetOps float64
	// Warmup is discarded; Measure is the reported interval. The paper
	// used 30-minute runs reporting the last 10 minutes.
	Warmup  sim.Duration
	Measure sim.Duration
	// WindowSize is the throughput/latency window (paper: 10 s).
	WindowSize sim.Duration
	// Seed makes runs deterministic.
	Seed int64
	// Start/Stop hooks launch and halt background processes
	// (checkpointers, flushers, balancer) inside the simulation.
	Start func()
	Stop  func()
}

// Result is one data point: achieved throughput and per-operation
// latency (mean ± standard error across measurement windows), matching
// what the paper plots in Figures 2–6.
type Result struct {
	System    string
	Workload  string
	TargetOps float64
	// Throughput is achieved ops/sec over the measurement interval.
	Throughput float64
	// Latency maps operation kind to its windowed latency summary (ms).
	Latency map[OpKind]metrics.Summary
	// Ops counts completed operations by kind.
	Ops map[OpKind]int64
	// Errors counts failed operations.
	Errors int64
	// Crashed reports whether the system crashed during the run
	// (Mongo-AS under Workload D overload).
	Crashed bool
}

type latWindow struct {
	sum   float64
	count int64
}

// Run executes one benchmark point on an already-loaded store and
// returns the measured result. It drives the simulator itself.
func Run(s *sim.Sim, store shard.Store, cfg RunConfig) Result {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 10 * sim.Second
	}
	if cfg.Measure <= 0 {
		cfg.Measure = 60 * sim.Second
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	res := Result{
		System:    store.Name(),
		Workload:  cfg.Workload.Name,
		TargetOps: cfg.TargetOps,
		Latency:   make(map[OpKind]metrics.Summary),
		Ops:       make(map[OpKind]int64),
	}

	// Shared generator state (processes are serialized by the sim
	// kernel, so plain fields are safe).
	insertCounter := cfg.Records
	var keyGen IntGenerator
	var latest *Latest
	switch cfg.Workload.Dist {
	case "latest":
		latest = NewLatest(cfg.Records)
		keyGen = latest
	case "uniform":
		keyGen = Uniform{N: cfg.Records}
	default:
		keyGen = NewScrambledZipfian(cfg.Records)
	}
	scanLen := UniformRange{Lo: 1, Hi: cfg.Workload.MaxScanLen}

	measureStart := sim.Time(cfg.Warmup)
	end := measureStart + sim.Time(cfg.Measure)
	windows := make(map[OpKind]map[int64]*latWindow)
	for _, k := range []OpKind{OpRead, OpUpdate, OpInsert, OpScan} {
		windows[k] = make(map[int64]*latWindow)
	}
	opsWindow := metrics.NewWindow(cfg.WindowSize)

	record := func(kind OpKind, t sim.Time, lat sim.Duration) {
		if t < measureStart || t >= end {
			return
		}
		res.Ops[kind]++
		opsWindow.Record(t)
		w := int64(t) / int64(cfg.WindowSize)
		lw := windows[kind][w]
		if lw == nil {
			lw = &latWindow{}
			windows[kind][w] = lw
		}
		lw.sum += lat.Milliseconds()
		lw.count++
	}

	var opInterval sim.Duration
	if cfg.TargetOps > 0 {
		opInterval = sim.Seconds(float64(cfg.Clients) / cfg.TargetOps)
	}

	for c := 0; c < cfg.Clients; c++ {
		c := c
		s.Spawn("ycsb-client", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			// Stagger throttled clients across one interval.
			next := sim.Time(sim.Duration(c) * opInterval / sim.Duration(cfg.Clients))
			for {
				now := p.Now()
				if now >= end {
					return
				}
				if opInterval > 0 {
					if now < next {
						p.Sleep(sim.Duration(next - now))
					}
					next += sim.Time(opInterval)
				}
				kind := pickOp(cfg.Workload, rng)
				t0 := p.Now()
				var err error
				switch kind {
				case OpRead:
					err = store.Read(p, c, Key(keyGen.Next(rng)))
				case OpUpdate:
					err = store.Update(p, c, Key(keyGen.Next(rng)), rng.Intn(FieldCount), oneField(rng))
				case OpInsert:
					k := insertCounter
					insertCounter++
					err = store.Insert(p, c, Key(k), MakeFields(rng))
					if err == nil {
						if latest != nil {
							latest.Grow(insertCounter)
						}
						if z, ok := keyGen.(*ScrambledZipfian); ok {
							_ = z // scrambled zipfian stays over the initial population
						}
					}
				case OpScan:
					_, err = store.Scan(p, c, Key(keyGen.Next(rng)), scanLen.Next(rng))
				}
				if err != nil {
					res.Errors++
					if errors.Is(err, shard.ErrCrashed) {
						res.Crashed = true
						return
					}
					continue
				}
				record(kind, p.Now(), sim.Duration(p.Now()-t0))
			}
		})
	}

	if cfg.Start != nil {
		cfg.Start()
	}
	// Stop background work once the run is over so the sim drains.
	if cfg.Stop != nil {
		s.Spawn("ycsb-stopper", func(p *sim.Proc) {
			p.Sleep(sim.Duration(end) + sim.Second)
			cfg.Stop()
		})
	}
	s.Run()

	// Aggregate: per-window mean latency, then mean ± stderr across
	// windows (the paper's 60-measurement protocol).
	for kind, ws := range windows {
		var means []float64
		for _, lw := range ws {
			if lw.count > 0 {
				means = append(means, lw.sum/float64(lw.count))
			}
		}
		if len(means) > 0 {
			res.Latency[kind] = metrics.Summarize(means)
		}
	}
	var total int64
	for _, n := range res.Ops {
		total += n
	}
	res.Throughput = float64(total) / cfg.Measure.Seconds()
	return res
}

func pickOp(w Workload, rng *rand.Rand) OpKind {
	r := rng.Float64()
	switch {
	case r < w.ReadPct:
		return OpRead
	case r < w.ReadPct+w.UpdatePct:
		return OpUpdate
	case r < w.ReadPct+w.UpdatePct+w.InsertPct:
		return OpInsert
	default:
		return OpScan
	}
}

func oneField(rng *rand.Rand) string {
	buf := make([]byte, FieldLen)
	for j := range buf {
		buf[j] = byte('a' + rng.Intn(26))
	}
	return string(buf)
}

// LoadConfig parameterizes a timed load phase.
type LoadConfig struct {
	Records int64
	Clients int
	Seed    int64
}

// RunLoad inserts records 0..Records-1 through the store's timed insert
// path, partitioned across clients, and returns the virtual load time.
// This regenerates the §3.4.2 load-time comparison.
func RunLoad(s *sim.Sim, store shard.Store, cfg LoadConfig) sim.Duration {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	per := cfg.Records / int64(cfg.Clients)
	var loadEnd sim.Time
	wg := s.NewWaitGroup()
	wg.Add(cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		c := c
		s.Spawn("loader", func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			lo := int64(c) * per
			hi := lo + per
			if c == cfg.Clients-1 {
				hi = cfg.Records
			}
			for i := lo; i < hi; i++ {
				store.Insert(p, c, Key(i), MakeFields(rng))
			}
			if p.Now() > loadEnd {
				loadEnd = p.Now()
			}
		})
	}
	s.Spawn("load-joiner", func(p *sim.Proc) { wg.Wait(p) })
	s.Run()
	return sim.Duration(loadEnd)
}
