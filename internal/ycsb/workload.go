package ycsb

// OpKind is a YCSB operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert // append: key = next integer after the last loaded record
	OpScan
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "append"
	case OpScan:
		return "scan"
	}
	return "unknown"
}

// Workload describes one of the five YCSB workloads (Table 6 of the
// paper).
type Workload struct {
	Name        string
	Description string
	ReadPct     float64
	UpdatePct   float64
	InsertPct   float64
	ScanPct     float64
	// Dist selects the request distribution for reads/updates/scan
	// starts: "zipfian", "latest", or "uniform".
	Dist string
	// MaxScanLen bounds scan lengths (uniform in [1, MaxScanLen]).
	MaxScanLen int
}

// The five standard workloads as the paper ran them.
var (
	// WorkloadA is update-heavy: 50% reads, 50% updates.
	WorkloadA = Workload{Name: "A", Description: "Update heavy", ReadPct: 0.5, UpdatePct: 0.5, Dist: "zipfian"}
	// WorkloadB is read-heavy: 95% reads, 5% updates.
	WorkloadB = Workload{Name: "B", Description: "Read heavy", ReadPct: 0.95, UpdatePct: 0.05, Dist: "zipfian"}
	// WorkloadC is read-only.
	WorkloadC = Workload{Name: "C", Description: "Read only", ReadPct: 1.0, Dist: "zipfian"}
	// WorkloadD is read-latest: 95% reads skewed to new records, 5% appends.
	WorkloadD = Workload{Name: "D", Description: "Read latest", ReadPct: 0.95, InsertPct: 0.05, Dist: "latest"}
	// WorkloadE is short ranges: 95% scans, 5% appends.
	WorkloadE = Workload{Name: "E", Description: "Short ranges", ScanPct: 0.95, InsertPct: 0.05, Dist: "zipfian", MaxScanLen: 100}
)

// Workloads lists all five in paper order.
var Workloads = []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE}

// ByName returns the workload with the given name (A–E).
func ByName(name string) (Workload, bool) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
