// Host-time write-stream driver: the OLTP half of the combined HTAP
// harness. Where Run drives the paper's simulated stores in virtual
// time, RunWriteStream drives a real store (the delta-log write path)
// with closed-loop client goroutines on the host clock, reusing the
// same shapes — closed-loop clients, an aggregate ops/sec throttle with
// per-client stagger, and windowless mean ± stderr latency summaries.
package ycsb

import (
	"sync"
	"sync/atomic"
	"time"

	"elephants/internal/metrics"
)

// WriteStreamConfig parameterizes one host-time write run.
type WriteStreamConfig struct {
	// Clients is the number of closed-loop writer goroutines (0 = 1).
	Clients int
	// TargetOps is the aggregate target throughput in ops/sec; 0 means
	// unthrottled.
	TargetOps float64
}

// WriteStreamResult reports one run.
type WriteStreamResult struct {
	// Ops is the number of operations issued (successful or not).
	Ops int64
	// Errors counts operations whose apply returned an error.
	Errors int64
	// Elapsed is the wall time from first to last operation.
	Elapsed time.Duration
	// OpsPerSec is Ops / Elapsed.
	OpsPerSec float64
	// Latency is the per-operation latency in milliseconds, summarized
	// as mean ± stderr across the per-client means (the same shape the
	// simulated runs report across measurement windows).
	Latency metrics.Summary
}

// RunWriteStream executes ops [0, n) through apply, distributed over
// closed-loop clients. Ops are claimed from a shared atomic cursor, so
// clients stay busy regardless of per-op latency variance; ordering
// across clients is not guaranteed (the delta store's apply side
// restores per-table order from record positions). Throttled clients
// stagger their start across one interval, as the simulated driver
// does.
func RunWriteStream(n int, cfg WriteStreamConfig, apply func(op int) error) WriteStreamResult {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Clients > n && n > 0 {
		cfg.Clients = n
	}
	var opInterval time.Duration
	if cfg.TargetOps > 0 {
		opInterval = time.Duration(float64(cfg.Clients) / cfg.TargetOps * float64(time.Second))
	}

	var cursor, errs atomic.Int64
	clientMeanMs := make([]float64, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Stagger throttled clients across one interval.
			next := start.Add(opInterval * time.Duration(c) / time.Duration(cfg.Clients))
			var sumMs float64
			var count int64
			for {
				op := int(cursor.Add(1) - 1)
				if op >= n {
					break
				}
				if opInterval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(opInterval)
				}
				t0 := time.Now()
				if err := apply(op); err != nil {
					errs.Add(1)
				}
				sumMs += float64(time.Since(t0)) / float64(time.Millisecond)
				count++
			}
			if count > 0 {
				clientMeanMs[c] = sumMs / float64(count)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := WriteStreamResult{
		Ops:     int64(n),
		Errors:  errs.Load(),
		Elapsed: elapsed,
		Latency: metrics.Summarize(clientMeanMs),
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(n) / elapsed.Seconds()
	}
	return res
}
