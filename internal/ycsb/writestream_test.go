package ycsb

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWriteStreamCoversOps: every op in [0, n) is applied exactly once,
// regardless of client count.
func TestWriteStreamCoversOps(t *testing.T) {
	const n = 500
	var mu sync.Mutex
	seen := make(map[int]int, n)
	res := RunWriteStream(n, WriteStreamConfig{Clients: 7}, func(op int) error {
		mu.Lock()
		seen[op]++
		mu.Unlock()
		return nil
	})
	if res.Ops != n {
		t.Errorf("Ops = %d, want %d", res.Ops, n)
	}
	if res.Errors != 0 {
		t.Errorf("Errors = %d, want 0", res.Errors)
	}
	if len(seen) != n {
		t.Fatalf("applied %d distinct ops, want %d", len(seen), n)
	}
	for op, c := range seen {
		if c != 1 {
			t.Fatalf("op %d applied %d times", op, c)
		}
	}
	if res.OpsPerSec <= 0 {
		t.Errorf("OpsPerSec = %v, want > 0", res.OpsPerSec)
	}
}

// TestWriteStreamErrors: apply failures count without stopping the run.
func TestWriteStreamErrors(t *testing.T) {
	res := RunWriteStream(10, WriteStreamConfig{Clients: 2}, func(op int) error {
		if op%2 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if res.Ops != 10 || res.Errors != 5 {
		t.Errorf("Ops=%d Errors=%d, want 10/5", res.Ops, res.Errors)
	}
}

// TestWriteStreamThrottle: a target rate bounds throughput from above.
func TestWriteStreamThrottle(t *testing.T) {
	const n, target = 50, 5000.0
	res := RunWriteStream(n, WriteStreamConfig{Clients: 4, TargetOps: target}, func(int) error {
		return nil
	})
	if min := time.Duration(float64(n-1) / target * float64(time.Second)); res.Elapsed < min/2 {
		t.Errorf("Elapsed = %v under throttle, want >= %v", res.Elapsed, min/2)
	}
}
