package ycsb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elephants/internal/cluster"
	"elephants/internal/docstore"
	"elephants/internal/shard"
	"elephants/internal/sim"
	"elephants/internal/sqleng"
)

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if len(k) != KeyLen {
		t.Errorf("key length = %d, want %d", len(k), KeyLen)
	}
	if k != "000000000000000000000042" {
		t.Errorf("key = %q", k)
	}
}

func TestKeyOrderMatchesIntOrder(t *testing.T) {
	f := func(a, b uint32) bool {
		ka, kb := Key(int64(a)), Key(int64(b))
		return (a < b) == (ka < kb) || a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Uniform{N: 100}
	for i := 0; i < 1000; i++ {
		v := g.Next(rng)
		if v < 0 || v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
}

func TestZipfianBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int64(nRaw)%10000 + 2
		z := NewZipfian(n, 0)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			v := z.Next(rng)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	z := NewZipfian(10000, 0)
	rng := rand.New(rand.NewSource(3))
	head := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if z.Next(rng) < 100 {
			head++
		}
	}
	// With theta=0.99 the top 1% of items draw far more than 1% of
	// requests; expect well above 30%.
	if float64(head)/draws < 0.3 {
		t.Errorf("top-100 items drew %.1f%% of requests; zipfian should be skewed", 100*float64(head)/draws)
	}
}

func TestZipfianGrowKeepsBounds(t *testing.T) {
	z := NewZipfian(100, 0)
	z.Grow(1000)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range after grow: %d", v)
		}
	}
	if z.N() != 1000 {
		t.Errorf("N = %d, want 1000", z.N())
	}
	z.Grow(10) // shrink is a no-op
	if z.N() != 1000 {
		t.Error("Grow must not shrink")
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	g := NewScrambledZipfian(10000)
	rng := rand.New(rand.NewSource(5))
	// The most popular items should not be contiguous near zero.
	low := 0
	for i := 0; i < 2000; i++ {
		if g.Next(rng) < 100 {
			low++
		}
	}
	if float64(low)/2000 > 0.3 {
		t.Errorf("scrambled zipfian still concentrated at low keys (%d/2000)", low)
	}
}

func TestLatestSkewsToRecent(t *testing.T) {
	l := NewLatest(10000)
	rng := rand.New(rand.NewSource(6))
	recent := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if l.Next(rng) >= 9900 {
			recent++
		}
	}
	if float64(recent)/draws < 0.3 {
		t.Errorf("latest distribution drew recent items only %.1f%% of the time", 100*float64(recent)/draws)
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := UniformRange{Lo: 1, Hi: 100}
	for i := 0; i < 1000; i++ {
		v := u.Next(rng)
		if v < 1 || v > 100 {
			t.Fatalf("out of range: %d", v)
		}
	}
	if (UniformRange{Lo: 5, Hi: 5}).Next(rng) != 5 {
		t.Error("degenerate range should return Lo")
	}
}

func TestWorkloadRatiosSumToOne(t *testing.T) {
	for _, w := range Workloads {
		sum := w.ReadPct + w.UpdatePct + w.InsertPct + w.ScanPct
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("workload %s ratios sum to %g", w.Name, sum)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("E"); !ok || w.ScanPct != 0.95 {
		t.Errorf("ByName(E) = %+v, %v", w, ok)
	}
	if _, ok := ByName("Z"); ok {
		t.Error("ByName(Z) should fail")
	}
}

func TestPickOpDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	counts := make(map[OpKind]int)
	for i := 0; i < 10000; i++ {
		counts[pickOp(WorkloadB, rng)]++
	}
	if counts[OpRead] < 9200 || counts[OpRead] > 9800 {
		t.Errorf("workload B reads = %d/10000, want ~9500", counts[OpRead])
	}
	if counts[OpScan] != 0 || counts[OpInsert] != 0 {
		t.Error("workload B must not produce scans or appends")
	}
}

// smallSQLCS builds a tiny loaded SQL-CS deployment for runner tests.
func smallSQLCS(records int64) (*sim.Sim, *shard.SQLCS) {
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: 3})
	engines := []*sqleng.Engine{
		sqleng.New(s, cl.Nodes[0], sqleng.Config{}),
		sqleng.New(s, cl.Nodes[1], sqleng.Config{}),
	}
	st := shard.NewSQLCS(engines, cl.Nodes[2:3])
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < records; i++ {
		st.Load(Key(i), MakeFields(rng))
	}
	return s, st
}

func TestRunProducesThroughputAndLatency(t *testing.T) {
	s, st := smallSQLCS(500)
	res := Run(s, st, RunConfig{
		Workload: WorkloadC,
		Records:  500,
		Clients:  4,
		Warmup:   sim.Second,
		Measure:  10 * sim.Second,
		Seed:     1,
	})
	if res.Throughput <= 0 {
		t.Fatal("throughput should be positive")
	}
	if res.Ops[OpRead] == 0 {
		t.Fatal("no reads recorded")
	}
	if res.Latency[OpRead].Mean <= 0 {
		t.Error("read latency should be positive")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
}

func TestRunThrottlingCapsThroughput(t *testing.T) {
	s, st := smallSQLCS(500)
	res := Run(s, st, RunConfig{
		Workload:  WorkloadC,
		Records:   500,
		Clients:   4,
		TargetOps: 50,
		Warmup:    sim.Second,
		Measure:   20 * sim.Second,
		Seed:      1,
	})
	if res.Throughput > 60 {
		t.Errorf("throughput %.1f exceeds target 50 by too much", res.Throughput)
	}
	if res.Throughput < 40 {
		t.Errorf("throughput %.1f far below achievable target 50", res.Throughput)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		s, st := smallSQLCS(200)
		return Run(s, st, RunConfig{
			Workload: WorkloadA,
			Records:  200,
			Clients:  2,
			Measure:  5 * sim.Second,
			Seed:     42,
		})
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput {
		t.Errorf("throughput not deterministic: %g vs %g", a.Throughput, b.Throughput)
	}
	if a.Ops[OpRead] != b.Ops[OpRead] || a.Ops[OpUpdate] != b.Ops[OpUpdate] {
		t.Errorf("op counts differ: %v vs %v", a.Ops, b.Ops)
	}
}

func TestRunWorkloadDAppends(t *testing.T) {
	s, st := smallSQLCS(300)
	res := Run(s, st, RunConfig{
		Workload: WorkloadD,
		Records:  300,
		Clients:  4,
		Measure:  10 * sim.Second,
		Seed:     2,
	})
	if res.Ops[OpInsert] == 0 {
		t.Error("workload D should append records")
	}
	if res.Ops[OpRead] == 0 {
		t.Error("workload D should read records")
	}
}

func TestRunWorkloadEScans(t *testing.T) {
	s, st := smallSQLCS(300)
	res := Run(s, st, RunConfig{
		Workload: WorkloadE,
		Records:  300,
		Clients:  2,
		Measure:  10 * sim.Second,
		Seed:     3,
	})
	if res.Ops[OpScan] == 0 {
		t.Error("workload E should scan")
	}
	if res.Latency[OpScan].Mean <= res.Latency[OpInsert].Mean {
		t.Log("scan latency not above append latency (acceptable at tiny scale)")
	}
}

func TestRunLoadTakesTime(t *testing.T) {
	s, st := smallSQLCS(0)
	d := RunLoad(s, st, LoadConfig{Records: 200, Clients: 4, Seed: 1})
	if d <= 0 {
		t.Fatal("load duration should be positive")
	}
	// All records must actually be there.
	s2, st2 := smallSQLCS(200)
	var err error
	s2.Spawn("check", func(p *sim.Proc) {
		err = st2.Read(p, 0, Key(199))
	})
	s2.Run()
	if err != nil {
		t.Errorf("record 199 unreadable after load: %v", err)
	}
}

func TestMongoStoresRunnable(t *testing.T) {
	s := sim.New()
	cl := cluster.New(s, cluster.Config{Nodes: 3})
	var mongods []*docstore.Mongod
	for i := 0; i < 4; i++ {
		mongods = append(mongods, docstore.NewMongod(s, cl.Nodes[i%2], docstore.Config{}))
	}
	st := shard.NewMongoCS(mongods, cl.Nodes[2:3])
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < 300; i++ {
		st.Load(Key(i), MakeFields(rng))
	}
	res := Run(s, st, RunConfig{
		Workload: WorkloadA,
		Records:  300,
		Clients:  4,
		Measure:  10 * sim.Second,
		Seed:     9,
	})
	if res.Throughput <= 0 || res.Errors > 0 {
		t.Errorf("mongo run: throughput=%.1f errors=%d", res.Throughput, res.Errors)
	}
}
