#!/bin/sh
# bench.sh — regenerate the benchmark artifacts:
#
#   BENCH_PR1.json  per-query ns/op, B/op, allocs/op for the 22 TPC-H
#                   queries on the in-memory relal executor (frozen
#                   row-at-a-time baseline vs current columnar engine)
#   BENCH_PR2.json  morsel-parallel speedup (workers=1 vs GOMAXPROCS) on
#                   a multi-row-group Filter/Aggregate bench, plus the
#                   RCFile pushdown bytes-skipped accounting for Q1/Q6
#   BENCH_PR3.json  parallel-join speedup for the join-heavy Q3/Q9
#                   (workers=1 vs GOMAXPROCS) plus concurrent
#                   query-stream throughput (streams=1 vs GOMAXPROCS
#                   over one shared DB, via cmd/tpchbench -streams)
#   BENCH_PR4.json  parallel-sort speedup for the sort-tailed Q1/Q3/Q10
#                   (workers=1 vs GOMAXPROCS) plus stream throughput
#                   with the fused TopK operator off vs on
#                   (cmd/tpchbench -no-topk vs default)
#   BENCH_PR5.json  dictionary-encoding win: Q1/Q6/Q3 ns/op + allocs/op
#                   over RCF3-backed scans with dict on vs -no-dict,
#                   plus the RCFile lineitem bytes on disk for both
#                   encodings (cmd/scanstats -table-bytes)
#   BENCH_PR6.json  shared scheduler + two-tier caching: RCFile-backed
#                   stream throughput at a fixed core budget with both
#                   caches off vs on (cmd/tpchbench -stream-rcfile,
#                   -no-result-cache/-no-chunk-cache vs defaults),
#                   including chunk-cache hit ratio and result-cache
#                   hit counts
#   BENCH_PR7.json  lightweight chunk encodings: Q1/Q6 ns/op +
#                   allocs/op over RCF4-backed scans with the adaptive
#                   RLE/delta encodings on vs -no-rle -no-delta, on
#                   unclustered and l_shipdate-clustered lineitem, plus
#                   the on-disk lineitem bytes for all four layouts
#   BENCH_PR8.json  HTAP delta pipeline: the combined harness (write
#                   clients replaying held rows through the delta log
#                   while analytical streams run) reporting write
#                   ops/sec x analytical QPS x freshness lag, in-memory
#                   and RCFile-backed, with caches on vs off
#   BENCH_PR9.json  durability: htap.Open recovery time vs delta-log
#                   size (BenchmarkRecovery), a full durable run on an
#                   on-disk log + RCF5 parts with timed close + reopen
#                   (-durable), and a fault-injected run exercising the
#                   converter's retry path (-fault-seed)
#
#   BENCH_PR10.json distributed scatter/gather: 22-query stream QPS
#                   through the coordinator at shard counts {1,2,4},
#                   the same stream under a seeded network fault
#                   schedule, and the kill → restart → replay → first
#                   exact answer recovery timing (-dist-recovery)
#
# Usage:
#
#   ./scripts/bench.sh [pr1-output.json]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_PR1.json}"

raw=$(go test -run xxx -bench 'BenchmarkTPCHQuery' -benchtime "${BENCHTIME:-3x}" -benchmem .)

# Frozen row-at-a-time baseline (engine at commit dafc0cb + go.mod),
# measured with -benchtime 3x on the reference machine.
baseline='
Q1 34931753 22944544 148401
Q2 260574 358701 1042
Q3 4106570 2683397 3067
Q4 8647695 4923498 76623
Q5 4749682 4721554 9243
Q6 1194407 208178 1112
Q7 50294733 43620770 64776
Q8 2358335 1167069 4416
Q9 21776923 13750024 34719
Q10 2999017 1551341 6577
Q11 244507 251808 3044
Q12 3616981 1236501 8456
Q13 2010686 1330765 22150
Q14 1717286 685050 2606
Q15 1895067 450573 4784
Q16 1100276 1030304 11042
Q17 1025077 31832 238
Q18 11524345 5214450 128566
Q19 20068799 16476648 31138
Q20 3715738 1961413 38237
Q21 76422604 34854845 622540
Q22 1109290 354474 18756
'

{
	echo '{'
	echo '  "benchmark": "BenchmarkTPCHQuery (go test -bench, SF 0.005, host time)",'
	echo '  "units": {"time": "ns/op", "bytes": "B/op", "allocs": "allocs/op"},'
	echo '  "queries": {'
	first=1
	for q in $(seq 1 22); do
		base=$(echo "$baseline" | awk -v q="Q$q" '$1 == q {print $2, $3, $4}')
		# go test names look like BenchmarkTPCHQuery/Q1 (with an
		# optional -GOMAXPROCS suffix); match exactly.
		col=$(echo "$raw" | awk -v pat="/Q$q(-[0-9]+)?$" '$1 ~ pat {print $3, $5, $7; exit}')
		[ -n "$col" ] || { echo "bench.sh: no columnar result for Q$q" >&2; exit 1; }
		set -- $base
		bns=$1; bb=$2; ba=$3
		set -- $col
		cns=$1; cb=$2; ca=$3
		[ $first = 1 ] || echo ','
		first=0
		printf '    "Q%s": {"row_baseline": {"ns_op": %s, "bytes_op": %s, "allocs_op": %s}, "columnar": {"ns_op": %s, "bytes_op": %s, "allocs_op": %s}}' \
			"$q" "$bns" "$bb" "$ba" "$cns" "$cb" "$ca"
	done
	echo ''
	echo '  }'
	echo '}'
} > "$out"
echo "wrote $out"

# ---- BENCH_PR2.json: parallel scan pipeline ----
out2="BENCH_PR2.json"
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

praw=$(go test -run xxx -bench 'BenchmarkMorselPipeline' -benchtime "${BENCHTIME:-3x}" ./internal/relal/)
w1=$(echo "$praw" | awk '$1 ~ /workers=1/ {print $3; exit}')
wm=$(echo "$praw" | awk '$1 ~ /workers=max/ {print $3; exit}')
[ -n "$w1" ] && [ -n "$wm" ] || { echo "bench.sh: MorselPipeline results missing" >&2; exit 1; }
speedup=$(awk -v a="$w1" -v b="$wm" 'BEGIN { printf "%.3f", a / b }')

scan=$(go run ./cmd/scanstats -sf 0.01 -group-rows 2048 -queries 1,6)

{
	echo '{'
	echo '  "benchmark": "BenchmarkMorselPipeline (Filter+Aggregate, 64-morsel synthetic table, host time) + cmd/scanstats (RCFile pushdown accounting)",'
	echo "  \"gomaxprocs\": $cores,"
	echo '  "note": "speedup = workers_1 / workers_max host time; meaningful only when gomaxprocs > 1",'
	echo "  \"morsel_pipeline\": {\"workers_1_ns_op\": $w1, \"workers_max_ns_op\": $wm, \"speedup\": $speedup},"
	printf '  "scanstats": %s\n' "$(echo "$scan" | sed 's/^/  /' | sed '1s/^  //')"
	echo '}'
} > "$out2"
echo "wrote $out2"

# ---- BENCH_PR3.json: parallel joins + concurrent query streams ----
out3="BENCH_PR3.json"

jraw=$(go test -run xxx -bench 'BenchmarkTPCHJoinQuery' -benchtime "${BENCHTIME:-3x}" ./internal/tpch/)
q3w1=$(echo "$jraw" | awk '$1 ~ /Q3\/workers=1/ {print $3; exit}')
q3wm=$(echo "$jraw" | awk '$1 ~ /Q3\/workers=max/ {print $3; exit}')
q9w1=$(echo "$jraw" | awk '$1 ~ /Q9\/workers=1/ {print $3; exit}')
q9wm=$(echo "$jraw" | awk '$1 ~ /Q9\/workers=max/ {print $3; exit}')
[ -n "$q3w1" ] && [ -n "$q3wm" ] && [ -n "$q9w1" ] && [ -n "$q9wm" ] || {
	echo "bench.sh: TPCHJoinQuery results missing" >&2; exit 1; }
q3sp=$(awk -v a="$q3w1" -v b="$q3wm" 'BEGIN { printf "%.3f", a / b }')
q9sp=$(awk -v a="$q9w1" -v b="$q9wm" 'BEGIN { printf "%.3f", a / b }')

rounds="${STREAM_ROUNDS:-3}"
s1=$(go run ./cmd/tpchbench -streams 1 -stream-rounds "$rounds" -laptop-sf 0.01 -stream-json)
sm=$(go run ./cmd/tpchbench -streams "$cores" -stream-rounds "$rounds" -laptop-sf 0.01 -stream-json)
[ -n "$s1" ] && [ -n "$sm" ] || { echo "bench.sh: stream results missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "BenchmarkTPCHJoinQuery (Q3/Q9 per-op wall time, SF 0.01) + cmd/tpchbench -streams (22-query streams over one shared DB, SF 0.01)",'
	echo "  \"gomaxprocs\": $cores,"
	echo '  "note": "join speedup = workers_1 / workers_max ns/op; stream scaling = streams_max qps / streams_1 qps; both ~1 on 1-core hosts",'
	echo '  "join_queries": {'
	echo "    \"Q3\": {\"workers_1_ns_op\": $q3w1, \"workers_max_ns_op\": $q3wm, \"speedup\": $q3sp},"
	echo "    \"Q9\": {\"workers_1_ns_op\": $q9w1, \"workers_max_ns_op\": $q9wm, \"speedup\": $q9sp}"
	echo '  },'
	echo "  \"streams_1\": $s1,"
	echo "  \"streams_max\": $sm"
	echo '}'
} > "$out3"
echo "wrote $out3"

# ---- BENCH_PR4.json: parallel sort + fused top-K ----
out4="BENCH_PR4.json"

sraw=$(go test -run xxx -bench 'BenchmarkTPCHSortQuery' -benchtime "${BENCHTIME:-3x}" ./internal/tpch/)
sq() { echo "$sraw" | awk -v pat="Q$1/workers=$2" '$1 ~ pat {print $3; exit}'; }
q1s1=$(sq 1 1); q1sm=$(sq 1 max)
q3s1=$(sq 3 1); q3sm=$(sq 3 max)
q10s1=$(sq 10 1); q10sm=$(sq 10 max)
[ -n "$q1s1" ] && [ -n "$q1sm" ] && [ -n "$q3s1" ] && [ -n "$q3sm" ] && [ -n "$q10s1" ] && [ -n "$q10sm" ] || {
	echo "bench.sh: TPCHSortQuery results missing" >&2; exit 1; }
sp() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", a / b }'; }

fused=$(go run ./cmd/tpchbench -streams "$cores" -stream-rounds "$rounds" -laptop-sf 0.01 -stream-json)
unfused=$(go run ./cmd/tpchbench -streams "$cores" -stream-rounds "$rounds" -laptop-sf 0.01 -stream-json -no-topk)
[ -n "$fused" ] && [ -n "$unfused" ] || { echo "bench.sh: topk stream results missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "BenchmarkTPCHSortQuery (Q1/Q3/Q10 per-op wall time, SF 0.01) + cmd/tpchbench -streams with the fused TopK off vs on (SF 0.01)",'
	echo "  \"gomaxprocs\": $cores,"
	echo '  "note": "sort speedup = workers_1 / workers_max ns/op, ~1 on 1-core hosts; topk fusion gain = fused qps / unfused qps (host-side only; replayed hive/pdw costs identical by construction)",'
	echo '  "sort_queries": {'
	echo "    \"Q1\": {\"workers_1_ns_op\": $q1s1, \"workers_max_ns_op\": $q1sm, \"speedup\": $(sp "$q1s1" "$q1sm")},"
	echo "    \"Q3\": {\"workers_1_ns_op\": $q3s1, \"workers_max_ns_op\": $q3sm, \"speedup\": $(sp "$q3s1" "$q3sm")},"
	echo "    \"Q10\": {\"workers_1_ns_op\": $q10s1, \"workers_max_ns_op\": $q10sm, \"speedup\": $(sp "$q10s1" "$q10sm")}"
	echo '  },'
	echo "  \"streams_sort_limit\": $unfused,"
	echo "  \"streams_topk_fused\": $fused"
	echo '}'
} > "$out4"
echo "wrote $out4"

# ---- BENCH_PR5.json: dictionary-encoded string columns ----
out5="BENCH_PR5.json"

draw=$(go test -run xxx -bench 'BenchmarkTPCHDictQuery' -benchtime "${BENCHTIME:-3x}" -benchmem ./internal/tpch/)
dq() { echo "$draw" | awk -v pat="Q$1/dict=$2" '$1 ~ pat {print $3, $7; exit}'; }
set -- $(dq 1 on);  q1on_ns=$1;  q1on_al=$2
set -- $(dq 1 off); q1off_ns=$1; q1off_al=$2
set -- $(dq 6 on);  q6on_ns=$1;  q6on_al=$2
set -- $(dq 6 off); q6off_ns=$1; q6off_al=$2
set -- $(dq 3 on);  q3on_ns=$1;  q3on_al=$2
set -- $(dq 3 off); q3off_ns=$1; q3off_al=$2
[ -n "$q1on_ns" ] && [ -n "$q1off_ns" ] && [ -n "$q6on_ns" ] && [ -n "$q3on_ns" ] || {
	echo "bench.sh: TPCHDictQuery results missing" >&2; exit 1; }

li_dict=$(go run ./cmd/scanstats -sf 0.01 -group-rows 2048 -table-bytes lineitem)
li_raw=$(go run ./cmd/scanstats -sf 0.01 -group-rows 2048 -table-bytes lineitem -no-dict)
[ -n "$li_dict" ] && [ -n "$li_raw" ] || { echo "bench.sh: lineitem byte counts missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "BenchmarkTPCHDictQuery (Q1/Q6/Q3 over RCF3-backed scans, SF 0.01, workers=1, host time) + cmd/scanstats -table-bytes (RCFile lineitem on-disk bytes, group-rows 2048)",'
	echo '  "note": "dict=on is the default generator path (codes + shared sorted dictionaries end to end); dict=off is tpchbench/dbgen -no-dict. Answers are byte-identical; only host time, allocations, and encoded bytes change.",'
	echo '  "queries": {'
	echo "    \"Q1\": {\"dict_on\": {\"ns_op\": $q1on_ns, \"allocs_op\": $q1on_al}, \"dict_off\": {\"ns_op\": $q1off_ns, \"allocs_op\": $q1off_al}, \"speedup\": $(sp "$q1off_ns" "$q1on_ns")},"
	echo "    \"Q6\": {\"dict_on\": {\"ns_op\": $q6on_ns, \"allocs_op\": $q6on_al}, \"dict_off\": {\"ns_op\": $q6off_ns, \"allocs_op\": $q6off_al}, \"speedup\": $(sp "$q6off_ns" "$q6on_ns")},"
	echo "    \"Q3\": {\"dict_on\": {\"ns_op\": $q3on_ns, \"allocs_op\": $q3on_al}, \"dict_off\": {\"ns_op\": $q3off_ns, \"allocs_op\": $q3off_al}, \"speedup\": $(sp "$q3off_ns" "$q3on_ns")}"
	echo '  },'
	echo "  \"rcfile_lineitem_bytes\": {\"dict_on\": $li_dict, \"dict_off\": $li_raw, \"ratio\": $(awk -v a="$li_dict" -v b="$li_raw" 'BEGIN { printf "%.4f", a / b }')}"
	echo '}'
} > "$out5"
echo "wrote $out5"

# ---- BENCH_PR6.json: shared scheduler + two-tier caching ----
out6="BENCH_PR6.json"

# Same core budget (the shared pool sizes itself to GOMAXPROCS either
# way), same RCFile-backed dataset and rounds; only the caches differ.
coff=$(go run ./cmd/tpchbench -streams "$cores" -stream-rounds "$rounds" -laptop-sf 0.01 \
	-stream-rcfile -stream-json -no-result-cache -no-chunk-cache)
con=$(go run ./cmd/tpchbench -streams "$cores" -stream-rounds "$rounds" -laptop-sf 0.01 \
	-stream-rcfile -stream-json)
chunk_only=$(go run ./cmd/tpchbench -streams "$cores" -stream-rounds "$rounds" -laptop-sf 0.01 \
	-stream-rcfile -stream-json -no-result-cache)
[ -n "$coff" ] && [ -n "$con" ] && [ -n "$chunk_only" ] || {
	echo "bench.sh: cached stream results missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "cmd/tpchbench -streams N -stream-rcfile (22-query streams over RCFile-backed sources, SF 0.01, shared morsel pool): both caches off vs chunk cache only vs both on",'
	echo "  \"gomaxprocs\": $cores,"
	echo '  "note": "all three runs use the same shared worker pool (no streams x workers oversubscription); caching gain = caches_on qps / caches_off qps. Scheduler fairness effects need gomaxprocs > 1; the caching gain shows at any core count.",'
	echo "  \"caches_off\": $coff,"
	echo "  \"chunk_cache_only\": $chunk_only,"
	echo "  \"caches_on\": $con"
	echo '}'
} > "$out6"
echo "wrote $out6"

# ---- BENCH_PR7.json: lightweight chunk encodings (RLE + delta) ----
out7="BENCH_PR7.json"

eraw=$(go test -run xxx -bench 'BenchmarkTPCHEncQuery' -benchtime "${BENCHTIME:-3x}" -benchmem ./internal/tpch/)
eq() { echo "$eraw" | awk -v pat="Q$1/$2/enc=$3" '$1 ~ pat {print $3, $7; exit}'; }
set -- $(eq 1 unclustered on);  q1uon_ns=$1;  q1uon_al=$2
set -- $(eq 1 unclustered off); q1uoff_ns=$1; q1uoff_al=$2
set -- $(eq 6 unclustered on);  q6uon_ns=$1;  q6uon_al=$2
set -- $(eq 6 unclustered off); q6uoff_ns=$1; q6uoff_al=$2
set -- $(eq 1 clustered on);    q1con_ns=$1;  q1con_al=$2
set -- $(eq 1 clustered off);   q1coff_ns=$1; q1coff_al=$2
set -- $(eq 6 clustered on);    q6con_ns=$1;  q6con_al=$2
set -- $(eq 6 clustered off);   q6coff_ns=$1; q6coff_al=$2
[ -n "$q1uon_ns" ] && [ -n "$q1coff_ns" ] && [ -n "$q6con_ns" ] || {
	echo "bench.sh: TPCHEncQuery results missing" >&2; exit 1; }

li_u_on=$(go run ./cmd/scanstats -sf 0.01 -group-rows 2048 -table-bytes lineitem)
li_u_off=$(go run ./cmd/scanstats -sf 0.01 -group-rows 2048 -table-bytes lineitem -no-rle -no-delta)
li_c_on=$(go run ./cmd/scanstats -sf 0.01 -group-rows 2048 -table-bytes lineitem -cluster l_shipdate)
li_c_off=$(go run ./cmd/scanstats -sf 0.01 -group-rows 2048 -table-bytes lineitem -cluster l_shipdate -no-rle -no-delta)
[ -n "$li_u_on" ] && [ -n "$li_c_on" ] || { echo "bench.sh: lineitem byte counts missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "BenchmarkTPCHEncQuery (Q1/Q6 over RCF4-backed scans, SF 0.01, workers=1, host time, unclustered vs -cluster l_shipdate) + cmd/scanstats -table-bytes (RCFile lineitem on-disk bytes, group-rows 2048)",'
	echo '  "note": "enc=on is the default RCF4 writer (adaptive plain/gdict/gdict+rle/rle/delta per chunk); enc=off is -no-rle -no-delta. Answers are byte-identical in all four cells. Single-core host times; the run-aware kernels mostly buy decoded-size and allocation wins, so ns/op deltas are modest on unclustered data and real on clustered.",'
	echo '  "queries": {'
	echo "    \"Q1\": {"
	echo "      \"unclustered\": {\"enc_on\": {\"ns_op\": $q1uon_ns, \"allocs_op\": $q1uon_al}, \"enc_off\": {\"ns_op\": $q1uoff_ns, \"allocs_op\": $q1uoff_al}, \"speedup\": $(sp "$q1uoff_ns" "$q1uon_ns")},"
	echo "      \"clustered\": {\"enc_on\": {\"ns_op\": $q1con_ns, \"allocs_op\": $q1con_al}, \"enc_off\": {\"ns_op\": $q1coff_ns, \"allocs_op\": $q1coff_al}, \"speedup\": $(sp "$q1coff_ns" "$q1con_ns")}"
	echo "    },"
	echo "    \"Q6\": {"
	echo "      \"unclustered\": {\"enc_on\": {\"ns_op\": $q6uon_ns, \"allocs_op\": $q6uon_al}, \"enc_off\": {\"ns_op\": $q6uoff_ns, \"allocs_op\": $q6uoff_al}, \"speedup\": $(sp "$q6uoff_ns" "$q6uon_ns")},"
	echo "      \"clustered\": {\"enc_on\": {\"ns_op\": $q6con_ns, \"allocs_op\": $q6con_al}, \"enc_off\": {\"ns_op\": $q6coff_ns, \"allocs_op\": $q6coff_al}, \"speedup\": $(sp "$q6coff_ns" "$q6con_ns")}"
	echo "    }"
	echo '  },'
	echo "  \"rcfile_lineitem_bytes\": {"
	echo "    \"unclustered\": {\"enc_on\": $li_u_on, \"enc_off\": $li_u_off, \"ratio\": $(awk -v a="$li_u_on" -v b="$li_u_off" 'BEGIN { printf "%.4f", a / b }')},"
	echo "    \"clustered\": {\"enc_on\": $li_c_on, \"enc_off\": $li_c_off, \"ratio\": $(awk -v a="$li_c_on" -v b="$li_c_off" 'BEGIN { printf "%.4f", a / b }')}"
	echo "  }"
	echo '}'
} > "$out7"
echo "wrote $out7"

# ---- BENCH_PR8.json: HTAP delta pipeline (writes + analytics) ----
out8="BENCH_PR8.json"

hmem=$(go run ./cmd/tpchbench -htap -laptop-sf 0.01 -writers "$cores" \
	-streams "$cores" -stream-rounds "$rounds" -htap-json)
hrcf=$(go run ./cmd/tpchbench -htap -laptop-sf 0.01 -writers "$cores" \
	-streams "$cores" -stream-rounds "$rounds" -stream-rcfile -htap-json)
hrcf_nocache=$(go run ./cmd/tpchbench -htap -laptop-sf 0.01 -writers "$cores" \
	-streams "$cores" -stream-rounds "$rounds" -stream-rcfile \
	-no-result-cache -no-chunk-cache -htap-json)
[ -n "$hmem" ] && [ -n "$hrcf" ] && [ -n "$hrcf_nocache" ] || {
	echo "bench.sh: htap results missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "cmd/tpchbench -htap (closed-loop write clients replaying held-back orders/lineitem rows through the group-committed delta log while 22-query streams run, SF 0.01, background converter at 256-row batches)",'
	echo "  \"gomaxprocs\": $cores,"
	echo '  "note": "freshness lag = committed - converted records, sampled while both phases run; final lag is always 0 after quiesce + convert. Write throughput and analytical QPS contend for the same cores, so single-core hosts show the interference directly.",'
	echo "  \"in_memory\": $hmem,"
	echo "  \"rcfile\": $hrcf,"
	echo "  \"rcfile_caches_off\": $hrcf_nocache"
	echo '}'
} > "$out8"
echo "wrote $out8"

# ---- BENCH_PR9.json: durability — recovery time vs log size ----
out9="BENCH_PR9.json"

rraw=$(go test -run xxx -bench 'BenchmarkRecovery' -benchtime "${RECOVERY_BENCHTIME:-5x}" ./internal/htap/)
# Each result line carries ns/op plus the custom log_bytes metric; pull
# both by unit label so the column order never matters.
rq() {
	echo "$rraw" | awk -v pat="frames=$1" '$1 ~ pat {
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i-1)
			if ($i == "log_bytes") lb = $(i-1)
		}
		print ns, lb; exit
	}'
}
set -- $(rq 1024); r1_ns=$1; r1_b=$2
set -- $(rq 4096); r4_ns=$1; r4_b=$2
set -- $(rq 16384); r16_ns=$1; r16_b=$2
[ -n "$r1_ns" ] && [ -n "$r4_ns" ] && [ -n "$r16_ns" ] || {
	echo "bench.sh: Recovery results missing" >&2; exit 1; }

hdur=$(go run ./cmd/tpchbench -htap -laptop-sf 0.01 -writers "$cores" \
	-streams "$cores" -stream-rounds "$rounds" -stream-rcfile \
	-durable "$(mktemp -d)" -sync-policy group -htap-json)
hfault=$(go run ./cmd/tpchbench -htap -laptop-sf 0.01 -writers "$cores" \
	-streams "$cores" -stream-rounds "$rounds" -stream-rcfile \
	-fault-seed 7 -htap-json)
[ -n "$hdur" ] && [ -n "$hfault" ] || {
	echo "bench.sh: durable htap results missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "BenchmarkRecovery (htap.Open replaying a file-backed delta log, host time) + cmd/tpchbench -htap -durable (full run on an on-disk log + RCF5 parts, closed and reopened) and -fault-seed (transient part-write faults through the converter retry path)",'
	echo "  \"gomaxprocs\": $cores,"
	echo '  "note": "recovery_vs_log_size replays N committed lineitem frames through the reorder buffer into tail views; the durable run reports the timed close -> reopen -> replay cycle in its durable block, and the fault run shows converter_retries absorbed without touching answers.",'
	echo '  "recovery_vs_log_size": {'
	echo "    \"frames_1024\": {\"ns_op\": $r1_ns, \"log_bytes\": $r1_b},"
	echo "    \"frames_4096\": {\"ns_op\": $r4_ns, \"log_bytes\": $r4_b},"
	echo "    \"frames_16384\": {\"ns_op\": $r16_ns, \"log_bytes\": $r16_b}"
	echo '  },'
	echo "  \"durable_disk\": $hdur,"
	echo "  \"fault_injected\": $hfault"
	echo '}'
} > "$out9"
echo "wrote $out9"

# ---- BENCH_PR10.json: distributed scatter/gather QPS + recovery ----
out10="BENCH_PR10.json"

d1=$(go run ./cmd/tpchbench -dist 1 -stream-rounds "$rounds" -dist-json)
d2=$(go run ./cmd/tpchbench -dist 2 -stream-rounds "$rounds" -dist-json)
d4=$(go run ./cmd/tpchbench -dist 4 -stream-rounds "$rounds" -dist-json)
dfault=$(go run ./cmd/tpchbench -dist 2 -stream-rounds "$rounds" \
	-dist-fault-seed 42 -dist-json)
drec=$(go run ./cmd/tpchbench -dist 2 -stream-rounds 1 \
	-dist-recovery -dist-json)
[ -n "$d1" ] && [ -n "$d2" ] && [ -n "$d4" ] && [ -n "$dfault" ] && [ -n "$drec" ] || {
	echo "bench.sh: dist results missing" >&2; exit 1; }

{
	echo '{'
	echo '  "benchmark": "cmd/tpchbench -dist (22-query streams scattered over localhost shard servers with durable delta logs, merged back byte-identical; network faults injected client-side on every frame; recovery = kill one shard, restart on the same port + data dir, time to the first exact answer through the retry loop)",'
	echo "  \"gomaxprocs\": $cores,"
	echo '  "note": "every answer is verified exact by construction (a wrong merge fails the run); qps therefore includes scatter, wire framing + CRC, RCF decode, and position-merge. The faulted run shows retries absorbing drops/truncations/duplicates/resets/delays; recovery_ms includes shard regeneration and delta-log replay via htap.Open.",'
	echo "  \"shards_1\": $d1,"
	echo "  \"shards_2\": $d2,"
	echo "  \"shards_4\": $d4,"
	echo "  \"net_faults\": $dfault,"
	echo "  \"recovery\": $drec"
	echo '}'
} > "$out10"
echo "wrote $out10"
